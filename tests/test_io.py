"""Tests for edge-list and SteinLib .stp I/O."""

import pytest

from repro.errors import ParseError
from repro.graphs.graph import Graph, WeightedGraph
from repro.graphs.io import (
    SteinerInstance,
    read_edge_list,
    read_stp,
    write_edge_list,
    write_stp,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path, two_triangles_bridge):
        path = tmp_path / "g.edges"
        write_edge_list(two_triangles_bridge, path)
        loaded = read_edge_list(path)
        assert loaded == two_triangles_bridge

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n\n1 2\n2 3  extra-ignored\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_string_nodes(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("alice bob\nbob carol\n")
        g = read_edge_list(path, node_type=str)
        assert g.has_edge("alice", "bob")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1\n")
        with pytest.raises(ParseError):
            read_edge_list(path)

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("a b\n")
        with pytest.raises(ParseError):
            read_edge_list(path)

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("1 1\n1 2\n")
        assert read_edge_list(path).num_edges == 1


class TestStp:
    def make_instance(self) -> SteinerInstance:
        graph = WeightedGraph([(1, 2, 1.0), (2, 3, 2.0), (1, 3, 5.0)])
        return SteinerInstance(name="tiny", graph=graph, terminals={1, 3})

    def test_roundtrip(self, tmp_path):
        instance = self.make_instance()
        path = tmp_path / "tiny.stp"
        write_stp(instance, path)
        loaded = read_stp(path)
        assert loaded.name == "tiny"
        assert loaded.num_nodes == 3
        assert loaded.num_edges == 3
        assert loaded.terminals == {1, 3}
        assert loaded.graph.weight(2, 3) == 2.0

    def test_unweighted_view(self):
        instance = self.make_instance()
        graph, terminals = instance.unweighted()
        assert isinstance(graph, Graph)
        assert graph.num_edges == 3
        assert terminals == {1, 3}

    def test_parse_reference_format(self, tmp_path):
        path = tmp_path / "ref.stp"
        path.write_text(
            "33D32945 STP File, STP Format Version 1.0\n"
            "SECTION Comment\n"
            'Name    "example"\n'
            "END\n"
            "SECTION Graph\n"
            "Nodes 4\n"
            "Edges 3\n"
            "E 1 2 1\n"
            "E 2 3 1\n"
            "E 3 4 2\n"
            "END\n"
            "SECTION Terminals\n"
            "Terminals 2\n"
            "T 1\n"
            "T 4\n"
            "END\n"
            "EOF\n"
        )
        instance = read_stp(path)
        assert instance.name == "example"
        assert instance.num_nodes == 4
        assert instance.terminals == {1, 4}

    def test_isolated_declared_nodes_kept(self, tmp_path):
        path = tmp_path / "iso.stp"
        path.write_text(
            "SECTION Graph\nNodes 5\nEdges 1\nE 1 2 1\nEND\n"
            "SECTION Terminals\nTerminals 1\nT 1\nEND\nEOF\n"
        )
        instance = read_stp(path)
        assert instance.num_nodes == 5

    def test_bad_edge_line(self, tmp_path):
        path = tmp_path / "bad.stp"
        path.write_text("SECTION Graph\nE 1 2\nEND\nEOF\n")
        with pytest.raises(ParseError):
            read_stp(path)

    def test_unknown_graph_line(self, tmp_path):
        path = tmp_path / "bad.stp"
        path.write_text("SECTION Graph\nFROBNICATE 1\nEND\nEOF\n")
        with pytest.raises(ParseError):
            read_stp(path)

    def test_terminal_outside_nodes(self, tmp_path):
        path = tmp_path / "bad.stp"
        path.write_text(
            "SECTION Graph\nNodes 2\nEdges 1\nE 1 2 1\nEND\n"
            "SECTION Terminals\nTerminals 1\nT 9\nEND\nEOF\n"
        )
        with pytest.raises(ParseError):
            read_stp(path)

    def test_generated_suites_roundtrip(self, tmp_path):
        from repro.datasets.steinlib import puc_like, vienna_like

        for instance in (puc_like(0), vienna_like(0)):
            path = tmp_path / f"{instance.name}.stp"
            write_stp(instance, path)
            loaded = read_stp(path)
            assert loaded.num_nodes == instance.num_nodes
            assert loaded.num_edges == instance.num_edges
            assert len(loaded.terminals) == len(instance.terminals)
