"""Tests for deterministic experiment seeding."""

import pathlib
import subprocess
import sys

import repro
from repro.workloads.seeding import stable_seed

#: Wherever `repro` was imported from; forwarded to subprocesses so the test
#: works from a source checkout without an installed package.
_SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parent.parent)


class TestStableSeed:
    def test_deterministic_in_process(self):
        assert stable_seed(0, "email", 5) == stable_seed(0, "email", 5)

    def test_distinguishes_inputs(self):
        seeds = {
            stable_seed(0, "email", 5),
            stable_seed(0, "email", 6),
            stable_seed(1, "email", 5),
            stable_seed(0, "yeast", 5),
        }
        assert len(seeds) == 4

    def test_in_32_bit_range(self):
        value = stable_seed("anything", 123, (4, 5))
        assert 0 <= value < 2**32

    def test_stable_across_processes(self):
        """The whole point: immune to PYTHONHASHSEED randomization."""
        code = (
            "from repro.workloads.seeding import stable_seed;"
            "print(stable_seed(0, 'football', 3))"
        )
        outputs = set()
        for hash_seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                    "PYTHONPATH": _SRC_DIR,
                },
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1
