"""Tests for the Table-1 summary experiment and the ablation study."""

from repro.experiments import ablations, table1


class TestTable1:
    def test_reduced_run(self):
        rows = table1.run(datasets=("football", "jazz"))
        assert [row.summary.name for row in rows] == ["football", "jazz"]
        for row in rows:
            assert row.summary.num_nodes > 0
            assert row.paper_nodes > 0
        # football is full size, so not scaled.
        assert rows[0].scaled is False

    def test_scaled_marker(self):
        rows = table1.run(datasets=("oregon",))
        assert rows[0].scaled is True
        rendered = table1.render(rows)
        assert "oregon*" in rendered

    def test_render_contains_paper_columns(self):
        rows = table1.run(datasets=("football",))
        rendered = table1.render(rows)
        assert "paper |V|" in rendered
        assert "115" in rendered


class TestAblations:
    def test_reduced_run(self):
        rows = ablations.run(
            dataset="football", query_size=4, avg_distance=2.0,
            runs=1, include_all_roots=False,
        )
        knobs = {row.knob for row in rows}
        assert knobs == {"baseline", "beta", "adjust", "selection"}
        baseline = next(row for row in rows if row.knob == "baseline")
        assert baseline.wiener > 0
        assert baseline.seconds > 0

    def test_finer_beta_not_worse(self):
        rows = ablations.run(
            dataset="football", query_size=4, avg_distance=2.0,
            runs=2, include_all_roots=False,
        )
        by_setting = {(row.knob, row.setting): row for row in rows}
        fine = by_setting[("beta", "0.25")]
        coarse = by_setting[("beta", "2.0")]
        assert fine.wiener <= coarse.wiener + 1e-9

    def test_exact_selection_not_worse_than_proxy(self):
        rows = ablations.run(
            dataset="football", query_size=4, avg_distance=2.0,
            runs=2, include_all_roots=False,
        )
        by_setting = {(row.knob, row.setting): row for row in rows}
        assert (
            by_setting[("selection", "exact-W")].wiener
            <= by_setting[("selection", "A-proxy")].wiener + 1e-9
        )

    def test_render(self):
        rows = ablations.run(
            dataset="football", query_size=3, avg_distance=2.0,
            runs=1, include_all_roots=False,
        )
        rendered = ablations.render(rows)
        assert "Ablations" in rendered
        assert "baseline" in rendered
