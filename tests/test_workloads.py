"""Tests for query workload generators."""

import random

import pytest

from helpers import random_connected_graph
from repro.errors import InvalidQueryError
from repro.communities import make_community_graph
from repro.workloads import (
    average_pairwise_distance,
    community_workload,
    component_query,
    different_communities_query,
    query_with_distance,
    random_query,
    same_community_query,
    workload,
)
from repro.graphs.generators import (
    barabasi_albert,
    configuration_model,
    path_graph,
    powerlaw_degrees,
)


class TestRandomQuery:
    def test_size_and_distinct(self):
        g = random_connected_graph(50, 0.1, 0)
        q = random_query(g, 7, random.Random(0))
        assert len(q) == len(set(q)) == 7
        assert all(g.has_node(v) for v in q)

    def test_invalid_size(self, triangle):
        with pytest.raises(InvalidQueryError):
            random_query(triangle, 0)
        with pytest.raises(InvalidQueryError):
            random_query(triangle, 4)


class TestComponentQuery:
    def test_power_law_host(self):
        g = barabasi_albert(300, 2, random.Random(0))
        q = component_query(g, 6, random.Random(1))
        assert len(q) == len(set(q)) == 6
        assert all(g.has_node(v) for v in q)

    def test_single_component_on_disconnected_host(self):
        from repro.graphs.components import connected_components

        # Power-law configuration models routinely leave stragglers.
        degrees = powerlaw_degrees(200, exponent=3.0, rng=random.Random(2))
        g = configuration_model(degrees, random.Random(3))
        components = connected_components(g)
        for seed in range(5):
            q = component_query(g, 5, random.Random(seed))
            assert len(q) == len(set(q)) == 5
            holders = [c for c in components if set(q) <= c]
            assert len(holders) == 1, "query straddles components"

    def test_queries_are_solvable(self):
        from repro.core.wiener_steiner import wiener_steiner
        from repro.graphs.graph import Graph

        g = Graph([(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)])
        for seed in range(4):
            q = component_query(g, 3, random.Random(seed))
            result = wiener_steiner(g, q)
            assert result.wiener_index < float("inf")

    def test_deterministic(self):
        g = barabasi_albert(100, 2, random.Random(4))
        a = component_query(g, 5, random.Random(7))
        b = component_query(g, 5, random.Random(7))
        assert a == b

    def test_size_validation(self, triangle):
        with pytest.raises(InvalidQueryError):
            component_query(triangle, 0)
        with pytest.raises(InvalidQueryError):
            component_query(triangle, 4)

    def test_no_component_large_enough(self):
        from repro.graphs.graph import Graph

        g = Graph([(0, 1), (2, 3), (4, 5)])
        with pytest.raises(InvalidQueryError):
            component_query(g, 3, random.Random(0))


class TestAveragePairwiseDistance:
    def test_path(self):
        g = path_graph(5)
        assert average_pairwise_distance(g, [0, 4]) == 4.0
        assert average_pairwise_distance(g, [0, 2, 4]) == (2 + 4 + 2) / 3

    def test_single_node(self, triangle):
        assert average_pairwise_distance(triangle, [0]) == 0.0

    def test_disconnected_infinite(self):
        from repro.graphs.graph import Graph

        g = Graph([(0, 1)], nodes=[2])
        assert average_pairwise_distance(g, [0, 2]) == float("inf")


class TestDistanceControlledQuery:
    @pytest.mark.parametrize("target", [2.0, 4.0])
    def test_hits_target(self, target):
        g = random_connected_graph(400, 0.015, 1)
        q = query_with_distance(g, 8, target, rng=random.Random(2))
        achieved = average_pairwise_distance(g, q)
        assert achieved == pytest.approx(target, abs=1.0)

    def test_size_one(self):
        g = random_connected_graph(30, 0.2, 2)
        assert len(query_with_distance(g, 1, 3.0, rng=random.Random(0))) == 1

    def test_invalid_size(self, triangle):
        with pytest.raises(InvalidQueryError):
            query_with_distance(triangle, 9, 2.0)

    def test_distinct_vertices(self):
        g = random_connected_graph(100, 0.05, 3)
        q = query_with_distance(g, 10, 3.0, rng=random.Random(4))
        assert len(set(q)) == 10


class TestWorkload:
    def test_shape(self):
        g = random_connected_graph(60, 0.1, 5)
        queries = workload(g, sizes=[3, 5], queries_per_size=4, seed=1)
        assert len(queries) == 8
        assert sorted({len(q) for q in queries}) == [3, 5]

    def test_deterministic(self):
        g = random_connected_graph(60, 0.1, 5)
        a = workload(g, sizes=[3], queries_per_size=3, seed=9)
        b = workload(g, sizes=[3], queries_per_size=3, seed=9)
        assert a == b


class TestCommunityWorkloads:
    @pytest.fixture(scope="class")
    def data(self):
        return make_community_graph(
            "toy", [40, 40, 40, 40], p_in=0.3, p_out=0.01, seed=11
        )

    def test_same_community(self, data):
        rng = random.Random(0)
        for _ in range(5):
            q = same_community_query(data, 5, rng)
            assert len(data.communities_of(q)) == 1

    def test_different_communities(self, data):
        rng = random.Random(1)
        for _ in range(5):
            q = different_communities_query(data, 4, rng)
            assert len(data.communities_of(q)) == 4

    def test_dc_too_many_communities(self, data):
        with pytest.raises(InvalidQueryError):
            different_communities_query(data, 9, random.Random(2))

    def test_sc_respects_min_size(self, data):
        q = same_community_query(data, 3, random.Random(3), min_community_size=40)
        assert len(data.communities_of(q)) == 1

    def test_workload_shape(self, data):
        queries = community_workload(
            data, "sc", sizes=(3, 4), queries_per_size=5, seed=4
        )
        assert len(queries) == 10

    def test_workload_flavor_guard(self, data):
        with pytest.raises(InvalidQueryError):
            community_workload(data, "xx")

    def test_workload_deterministic(self, data):
        a = community_workload(data, "dc", sizes=(3,), queries_per_size=4, seed=8)
        b = community_workload(data, "dc", sizes=(3,), queries_per_size=4, seed=8)
        assert a == b
