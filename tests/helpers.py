"""Importable helpers shared across test modules.

These used to live in ``tests/conftest.py`` and be imported with
``from conftest import ...``, which breaks as soon as pytest's rootdir
contains *another* conftest (the benchmark harness has one): ``conftest``
then resolves to whichever file was loaded first.  A plain module with a
unique name has no such ambiguity — ``pyproject.toml`` puts ``tests/`` on
``pythonpath`` so ``from helpers import ...`` always works.
"""

from __future__ import annotations

import random

from repro.graphs.graph import Graph
from repro.graphs.generators import connectify, erdos_renyi


def random_connected_graph(n: int, p: float, seed: int) -> Graph:
    """A connected ER graph — helper shared by several test modules."""
    local = random.Random(seed)
    return connectify(erdos_renyi(n, p, rng=local), rng=local)


def to_networkx(graph: Graph):
    """Convert to a networkx graph for oracle comparisons."""
    import networkx as nx

    oracle = nx.Graph()
    oracle.add_nodes_from(graph.nodes())
    oracle.add_edges_from(graph.edges())
    return oracle
