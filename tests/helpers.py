"""Importable helpers shared across test modules.

These used to live in ``tests/conftest.py`` and be imported with
``from conftest import ...``, which breaks as soon as pytest's rootdir
contains *another* conftest (the benchmark harness has one): ``conftest``
then resolves to whichever file was loaded first.  A plain module with a
unique name has no such ambiguity — ``pyproject.toml`` puts ``tests/`` on
``pythonpath`` so ``from helpers import ...`` always works.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import re
import subprocess
import sys
import time

from repro.graphs.graph import Graph, WeightedGraph
from repro.graphs.generators import connectify, erdos_renyi


def assert_no_orphan_processes(timeout: float = 5.0) -> None:
    """Every worker/shard process must be reaped within ``timeout`` seconds.

    The shared teardown yardstick of the multi-process serving layers: a
    test that closed a sharded service (directly, through a gateway, or
    through the TCP server) asserts nothing survived it.
    """
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children():
        if time.monotonic() > deadline:  # pragma: no cover - failure path
            raise AssertionError(
                f"orphaned worker processes: {multiprocessing.active_children()}"
            )
        time.sleep(0.01)


def spawn_shard_host(
    dataset: str, timeout: float = 30.0, port: int = 0
) -> tuple[subprocess.Popen, int]:
    """A real ``repro shard-host DATASET`` subprocess; returns (process, port).

    The shared spawn-and-parse-the-listening-line helper of the remote
    transport tests.  On success the caller owns the process
    (kill/communicate it in a ``finally``); the port comes from the
    daemon's parseable ``listening on 127.0.0.1:PORT`` line.  Pass a
    non-zero ``port`` to respawn a daemon at a known address (the
    kill-and-heal chaos tests revive a replica where the router expects
    it).  A daemon
    that exits, stays silent past ``timeout``, or prints an unexpected
    banner is killed here and reported as an AssertionError — a broken
    spawn must fail the test, never hang the suite or leak the child.
    """
    import threading

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-host", dataset,
         "--port", str(port)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    # A watchdog rather than select-on-stdout: the daemon's banner and
    # listening lines may arrive in one pipe chunk, and selecting on a
    # *buffered* text stream would then stall on the fd while the wanted
    # line sits unread in the Python-level buffer.  Killing the child on
    # timeout turns the blocking readline into a clean EOF instead.
    timed_out = threading.Event()

    def _expire():
        timed_out.set()
        process.kill()

    watchdog = threading.Timer(timeout, _expire)
    watchdog.start()
    try:
        for line in process.stdout:
            match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if match:
                return process, int(match.group(1))
        if timed_out.is_set():
            raise AssertionError(
                f"shard host did not print its port within {timeout}s"
            )
        raise AssertionError(
            "shard host exited before printing its port: "
            f"{process.stderr.read()}"
        )
    except BaseException:
        process.kill()
        process.communicate()
        raise
    finally:
        watchdog.cancel()


def random_connected_graph(n: int, p: float, seed: int) -> Graph:
    """A connected ER graph — helper shared by several test modules."""
    local = random.Random(seed)
    return connectify(erdos_renyi(n, p, rng=local), rng=local)


def random_weighted_graph(n: int, num_edges: int, seed: int) -> WeightedGraph:
    """A random multigraph-free weighted graph with small integer-ish weights."""
    rng = random.Random(seed)
    graph = WeightedGraph()
    for _ in range(num_edges):
        u, v = rng.sample(range(n), 2)
        graph.add_edge(u, v, rng.choice([1.0, 2.0, 2.5, 3.0, 4.0]))
    return graph


def random_query_batch(graph: Graph, rng: random.Random, count: int,
                       lo: int = 2, hi: int = 5) -> list[list]:
    """``count`` random query sets of size ``lo..hi`` over ``graph``."""
    nodes = sorted(graph.nodes())
    return [rng.sample(nodes, rng.randint(lo, hi)) for _ in range(count)]


def assert_connector_identical(result, reference) -> None:
    """Assert two solves are *bit-identical*, not merely equal-quality.

    The shared yardstick of every serving-layer identity test: the vertex
    sets must match, and so must the sweep trace the solver reports
    (chosen root, chosen λ, number of distinct candidates scored) — a
    cache or routing bug that changes *how* the answer was found fails
    here even when the answer happens to coincide.
    """
    assert result.nodes == reference.nodes
    assert result.query == reference.query
    for key in ("root", "lambda", "candidates"):
        assert result.metadata.get(key) == reference.metadata.get(key), key


def to_networkx(graph: Graph):
    """Convert to a networkx graph for oracle comparisons."""
    import networkx as nx

    oracle = nx.Graph()
    oracle.add_nodes_from(graph.nodes())
    oracle.add_edges_from(graph.edges())
    return oracle
