"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's structural facts as executable properties over
randomly generated graphs and queries:

* metric axioms of BFS distances;
* Lemma 1's sandwich between the Wiener index and rooted distance sums;
* monotonicity of induced distances under subgraph restriction;
* Lemma 2's guarantees for AdjustDistances;
* the connector contract and approximation sanity of WienerSteiner;
* admissibility of the branch-and-bound lower bounds.
"""

from __future__ import annotations

import math
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.adjust import adjust_distances, verify_lemma2
from repro.core.exact import brute_force
from repro.core.objectives import verify_lemma1
from repro.core.steiner import steiner_tree_unweighted
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.components import is_tree, nodes_connect
from repro.graphs.generators import connectify, erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.graphs.wiener import wiener_index
from repro.solvers.bounds import query_distance_maps, query_pair_bound


@st.composite
def connected_graphs(draw, min_nodes=4, max_nodes=24):
    """A connected random graph plus its rng seed."""
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 10_000))
    p = draw(st.floats(0.1, 0.5))
    rng = random.Random(seed)
    graph = connectify(erdos_renyi(n, p, rng=rng), rng=rng)
    return graph


@st.composite
def graphs_with_queries(draw, min_query=2, max_query=5):
    graph = draw(connected_graphs())
    nodes = sorted(graph.nodes())
    k = draw(st.integers(min_query, min(max_query, len(nodes))))
    seed = draw(st.integers(0, 10_000))
    query = random.Random(seed).sample(nodes, k)
    return graph, query


common = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestDistanceAxioms:
    @common
    @given(connected_graphs())
    def test_triangle_inequality(self, graph):
        nodes = sorted(graph.nodes())
        maps = {v: bfs_distances(graph, v) for v in nodes[:4]}
        for u in list(maps)[:2]:
            for v in list(maps)[:4]:
                for w in nodes[:6]:
                    assert maps[u][w] <= maps[u][v] + maps[v][w]

    @common
    @given(connected_graphs())
    def test_symmetry(self, graph):
        nodes = sorted(graph.nodes())
        u, v = nodes[0], nodes[-1]
        assert bfs_distances(graph, u)[v] == bfs_distances(graph, v)[u]


class TestWienerProperties:
    @common
    @given(connected_graphs())
    def test_lemma1_sandwich(self, graph):
        low, middle, high = verify_lemma1(graph, graph.nodes())
        assert low <= middle + 1e-9 <= high + 1e-9

    @common
    @given(graphs_with_queries())
    def test_induced_distances_dominate_host(self, graph_query):
        """d_{G[S]}(u,v) >= d_G(u,v) for any induced subgraph."""
        graph, query = graph_query
        sub_nodes = set(query)
        # Grow the set with neighbors so it is usually connected.
        for q in query:
            sub_nodes.update(list(graph.neighbors(q)))
        sub = graph.subgraph(sub_nodes)
        host = bfs_distances(graph, query[0])
        inside = bfs_distances(sub, query[0])
        for node, d in inside.items():
            assert d >= host[node]

    @common
    @given(connected_graphs())
    def test_wiener_lower_bound_by_pairs(self, graph):
        """W(G) >= C(n,2) for connected graphs (every pair >= 1)."""
        n = graph.num_nodes
        assert wiener_index(graph) >= n * (n - 1) / 2


class TestSteinerProperties:
    @common
    @given(graphs_with_queries())
    def test_steiner_tree_is_tree_spanning_terminals(self, graph_query):
        graph, query = graph_query
        tree = steiner_tree_unweighted(graph, query)
        assert is_tree(tree)
        assert set(query) <= set(tree.nodes())

    @common
    @given(graphs_with_queries())
    def test_adjust_distances_lemma2(self, graph_query):
        graph, query = graph_query
        tree = steiner_tree_unweighted(graph, query)
        root = query[0]
        adjusted = adjust_distances(graph, tree, root)
        assert verify_lemma2(graph, tree, adjusted, root) == []


class TestConnectorProperties:
    @common
    @given(graphs_with_queries())
    def test_ws_q_contract(self, graph_query):
        graph, query = graph_query
        result = wiener_steiner(graph, query)
        assert set(query) <= set(result.nodes)
        assert nodes_connect(graph, result.nodes)
        assert result.wiener_index < math.inf

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graphs_with_queries(max_query=4))
    def test_ws_q_within_constant_of_optimum(self, graph_query):
        graph, query = graph_query
        if graph.num_nodes - len(query) > 14:
            return  # brute force infeasible; skip silently
        optimum = brute_force(graph, query, max_candidates=14).wiener_index
        approx = wiener_steiner(graph, query).wiener_index
        assert optimum <= approx <= 3 * optimum + 1e-9

    @common
    @given(graphs_with_queries())
    def test_query_pair_bound_admissible(self, graph_query):
        graph, query = graph_query
        maps = query_distance_maps(graph, query)
        bound = query_pair_bound(query, maps)
        ws = wiener_steiner(graph, query).wiener_index
        assert bound <= ws + 1e-9


class TestGraphStructureProperties:
    @common
    @given(connected_graphs())
    def test_subgraph_of_all_nodes_is_identity(self, graph):
        assert graph.subgraph(graph.nodes()) == graph

    @common
    @given(connected_graphs(), st.integers(0, 10_000))
    def test_edge_removal_count(self, graph, seed):
        rng = random.Random(seed)
        edges = list(graph.edges())
        u, v = rng.choice(edges)
        before = graph.num_edges
        clone = graph.copy()
        clone.remove_edge(u, v)
        assert clone.num_edges == before - 1
        assert graph.has_edge(u, v)  # original untouched

    @common
    @given(connected_graphs())
    def test_degree_sum_is_twice_edges(self, graph):
        assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges
