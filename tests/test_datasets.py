"""Tests for datasets: karate (exact), registry stand-ins, steinlib suites,
and the case-study networks."""

import pytest

from repro.datasets import (
    FIGURE1_QUERY_DIFFERENT_COMMUNITIES,
    FIGURE1_QUERY_SAME_COMMUNITY,
    GROUND_TRUTH_DATASETS,
    HUB_GENES,
    NAMED_USERS,
    QUERY_GENES,
    SPECS,
    dataset_names,
    karate_club,
    karate_factions,
    kdd_twitter_network,
    load_community_dataset,
    load_dataset,
    ppi_network,
    puc_like,
    puc_suite,
    vienna_like,
    vienna_suite,
)
from repro.graphs.components import is_connected
from repro.graphs.metrics import average_degree


class TestKarate:
    def test_exact_size(self):
        g = karate_club()
        assert g.num_nodes == 34
        assert g.num_edges == 78

    def test_known_degrees(self):
        g = karate_club()
        assert g.degree(1) == 16  # the instructor
        assert g.degree(34) == 17  # the president
        assert g.degree(33) == 12

    def test_factions_partition(self):
        g = karate_club()
        a, b = karate_factions()
        assert a | b == set(g.nodes())
        assert not a & b

    def test_figure1_queries_in_graph(self):
        g = karate_club()
        for q in FIGURE1_QUERY_DIFFERENT_COMMUNITIES + FIGURE1_QUERY_SAME_COMMUNITY:
            assert g.has_node(q)

    def test_connected(self):
        assert is_connected(karate_club())


class TestRegistry:
    def test_all_names_covered(self):
        assert len(dataset_names()) == 13  # every Table-1 graph

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    @pytest.mark.parametrize("name", ["football", "jazz", "celegans"])
    def test_small_datasets_full_size(self, name):
        g = load_dataset(name)
        assert g.num_nodes == SPECS[name].paper_nodes
        assert is_connected(g)

    @pytest.mark.parametrize("name", ["football", "jazz", "celegans", "email"])
    def test_degree_regime_matches_paper(self, name):
        g = load_dataset(name)
        spec = SPECS[name]
        paper_ad = 2 * spec.paper_edges / spec.paper_nodes
        assert average_degree(g) == pytest.approx(paper_ad, rel=0.35)

    def test_caching_returns_same_object(self):
        assert load_dataset("football") is load_dataset("football")

    def test_no_cache_fresh_object(self):
        a = load_dataset("football", use_cache=False)
        b = load_dataset("football", use_cache=False)
        assert a is not b
        assert a == b  # deterministic generation

    def test_community_dataset(self):
        data = load_community_dataset("dblp")
        assert len(data.communities) == SPECS["dblp"].num_communities
        assert sum(map(len, data.communities)) == data.graph.num_nodes
        assert is_connected(data.graph)

    def test_community_dataset_guard(self):
        with pytest.raises(KeyError):
            load_community_dataset("jazz")

    def test_ground_truth_names(self):
        for name in GROUND_TRUTH_DATASETS:
            assert SPECS[name].kind == "pp"


class TestSteinlibSuites:
    def test_puc_instance_shape(self):
        inst = puc_like(0)
        assert inst.num_nodes == 64  # dimension 6
        assert inst.terminals
        assert inst.terminals <= set(inst.graph.nodes())

    def test_puc_deterministic(self):
        a, b = puc_like(3), puc_like(3)
        assert a.num_edges == b.num_edges
        assert a.terminals == b.terminals

    def test_vienna_connected(self):
        inst = vienna_like(1)
        graph, terminals = inst.unweighted()
        assert is_connected(graph)
        assert terminals <= set(graph.nodes())
        assert len(terminals) >= 10

    def test_suites_sizes(self):
        assert len(puc_suite(5)) == 5
        assert len(vienna_suite(4)) == 4

    def test_names_unique(self):
        names = [inst.name for inst in puc_suite(6)]
        assert len(set(names)) == 6


class TestPPI:
    def test_structure(self):
        data = ppi_network()
        g = data.graph
        assert is_connected(g)
        for gene in QUERY_GENES + HUB_GENES:
            assert g.has_node(gene)
        assert data.module_of["p53"] == "cancer"

    def test_hub_core_interlinked(self):
        g = ppi_network().graph
        assert g.has_edge("p53", "GSK3B")  # the cancer-Alzheimer's link

    def test_queries_attached_to_hubs(self):
        g = ppi_network().graph
        assert g.has_edge("BMP1", "p53")
        assert g.has_edge("JAK2", "HSP90")
        assert g.has_edge("PSEN", "GSK3B")
        assert g.has_edge("SLC6A4", "SNCA")

    def test_hubs_have_high_degree(self):
        data = ppi_network()
        g = data.graph
        hub_min = min(g.degree(h) for h in data.hubs)
        mean = 2 * g.num_edges / g.num_nodes
        assert hub_min > 3 * mean

    def test_deterministic(self):
        assert ppi_network().graph == ppi_network().graph


class TestTwitter:
    def test_structure(self):
        data = kdd_twitter_network()
        g = data.graph
        assert is_connected(g)
        assert g.num_nodes >= 1100
        for user in NAMED_USERS:
            assert g.has_node(user)

    def test_celebrities_dominate_degree(self):
        data = kdd_twitter_network()
        g = data.graph
        degrees = sorted(g.nodes(), key=g.degree, reverse=True)
        assert degrees[0] == "kdnuggets"
        assert degrees[1] == "drewconway"

    def test_communities_assigned(self):
        data = kdd_twitter_network()
        assert data.community_of["kdnuggets"] == 1
        assert data.community_of["gizmonaut"] == 13
        assert set(data.community_of.values()) == set(range(1, 14))

    def test_followers_table(self):
        data = kdd_twitter_network()
        assert data.followers["kdnuggets"] == 23100
