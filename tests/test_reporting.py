"""Tests for the ASCII reporting helpers and experiment stats plumbing."""

import math

import pytest

from helpers import random_connected_graph
from repro.experiments.reporting import (
    format_quantity,
    percentile,
    render_cdf,
    render_series,
    render_table,
)
from repro.experiments.stats import (
    SolutionStats,
    average_stats,
    characterize,
    host_betweenness,
    run_methods,
)


class TestFormatQuantity:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (5.0, "5"),
            (0.125, "0.12"),
            (1500.0, "≈1.5k"),
            (2_000_000.0, "≈2.0M"),
            (1.5e9, "≈1.5G"),
            (math.inf, "inf"),
        ],
    )
    def test_cases(self, value, expected):
        assert format_quantity(value) == expected

    def test_nan(self):
        assert format_quantity(float("nan")) == "nan"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(("a", "bbb"), [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_wide_cells_expand_columns(self):
        text = render_table(("x",), [("wide-content",)])
        assert "wide-content" in text


class TestRenderSeries:
    def test_layout(self):
        text = render_series("n", [1, 2], {"m": [10.0, 20.0]}, title="s")
        assert "n" in text and "m" in text
        assert "10" in text and "20" in text


class TestCdf:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 1.0) == 4.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_render_cdf(self):
        text = render_cdf([1.0, 1.5, 2.0], "ratio", points=4)
        assert "CDF of ratio" in text
        assert "p100%" in text

    def test_render_cdf_empty(self):
        assert "(no data)" in render_cdf([], "ratio")


class TestStats:
    def test_characterize(self):
        from repro.core.wiener_steiner import wiener_steiner

        g = random_connected_graph(40, 0.12, 31)
        centrality = host_betweenness(g)
        query = sorted(g.nodes())[:4]
        result = wiener_steiner(g, query)
        stats = characterize(result, centrality)
        assert stats.method == "ws-q"
        assert stats.size == result.size
        assert stats.wiener == result.wiener_index
        assert 0 <= stats.betweenness <= 1

    def test_run_methods_covers_registry(self):
        from repro.baselines import METHODS

        g = random_connected_graph(40, 0.12, 32)
        centrality = host_betweenness(g)
        query = sorted(g.nodes())[:3]
        stats = run_methods(g, query, centrality)
        assert set(stats) == set(METHODS)
        for value in stats.values():
            assert value.runtime_seconds >= 0

    def test_average_stats(self):
        a = {"m": SolutionStats("m", 10, 0.2, 0.1, 100.0, 1.0)}
        b = {"m": SolutionStats("m", 20, 0.4, 0.3, 300.0, 3.0)}
        merged = average_stats([a, b])
        assert merged["m"].size == 15
        assert merged["m"].density == pytest.approx(0.3)
        assert merged["m"].wiener == pytest.approx(200.0)
