"""Round-trip tests for the JSON-lines TCP server and its client.

Three layers: the wire-format helpers of :mod:`repro.serving.protocol`,
an in-process :class:`GatewayServer` round trip (identity against
one-shot solves, control ops, per-request error isolation, clean
teardown of a sharded backing service), and the ``repro serve`` CLI as a
real subprocess driven by the async client — the acceptance path: start,
answer, shut down with no orphaned shard processes.
"""

import asyncio
import json
import os
import re
import subprocess
import sys

import pytest

from helpers import (
    assert_no_orphan_processes,
    random_connected_graph,
)
from repro.core.gateway import AsyncGateway
from repro.core.options import SolveOptions
from repro.core.service import ConnectorService
from repro.core.sharded import ShardedConnectorService
from repro.core.wiener_steiner import wiener_steiner
from repro.serving.protocol import (
    canonical_sort,
    decode_line,
    encode_line,
    options_from_payload,
    result_to_payload,
)
from repro.serving.server import (
    AsyncConnectorClient,
    GatewayServer,
    ServerError,
)


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=60))


class _FakeResult:
    """The minimal surface ``result_to_payload`` serializes."""

    def __init__(self, nodes):
        self.query = nodes
        self.nodes = nodes
        self.added_nodes = frozenset()
        self.size = len(nodes)
        self.wiener_index = 1.0
        self.density = 1.0
        self.method = "fake"
        self.metadata = {}


class TestProtocol:
    def test_canonical_sort_numeric_and_mixed(self):
        assert canonical_sort([10, 2, 1]) == [1, 2, 10]
        # Mixed types group by type name, then repr — deterministic, and
        # homogeneous numeric labels never fall into repr order.
        assert canonical_sort(["b", 2, "a"]) == [2, "a", "b"]

    def test_options_round_trip(self):
        options = SolveOptions(beta=2.0, selection="wiener", roots=(3, 1))
        import dataclasses

        payload = json.loads(json.dumps(dataclasses.asdict(options)))
        assert options_from_payload(payload) == options

    def test_options_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown option fields"):
            options_from_payload({"bogus": 1})
        with pytest.raises(ValueError, match="JSON object"):
            options_from_payload([1, 2])

    def test_encode_decode_line(self):
        message = {"query": [1, 2], "id": 7}
        assert decode_line(encode_line(message)) == message
        with pytest.raises(ValueError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_result_payload_is_json_safe(self):
        graph = random_connected_graph(20, 0.2, seed=1)
        result = wiener_steiner(graph, sorted(graph.nodes())[:3])
        payload = result_to_payload(result)
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["query"] == canonical_sort(result.query)
        assert round_tripped["nodes"] == canonical_sort(result.nodes)
        assert round_tripped["metadata"]["root"] == result.metadata["root"]


class TestGatewayServer:
    def test_round_trip_identity_and_control_ops(self):
        graph = random_connected_graph(30, 0.15, seed=2)
        queries = [sorted(graph.nodes())[i:i + 3] for i in (0, 4, 8, 0)]
        references = [wiener_steiner(graph, query) for query in queries]

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service, max_batch=8, max_wait_ms=2.0)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    client = await AsyncConnectorClient.connect(
                        port=server.port
                    )
                    async with client:
                        assert await client.ping()
                        documents = await asyncio.gather(
                            *(client.solve(query) for query in queries)
                        )
                        stats = await client.stats()
                return documents, stats
            finally:
                await gateway.aclose()

        documents, stats = run(scenario())
        for document, reference in zip(documents, references):
            assert document["nodes"] == canonical_sort(reference.nodes)
            assert document["metadata"]["root"] == reference.metadata["root"]
            assert document["metadata"]["lambda"] == reference.metadata["lambda"]
            assert (
                document["metadata"]["candidates"]
                == reference.metadata["candidates"]
            )
        assert stats["gateway"]["results_served"] == len(queries) - 1
        assert stats["gateway"]["coalesced"] >= 1  # the duplicate request
        assert stats["service"]["queries_served"] >= 3

    def test_request_errors_do_not_kill_the_connection(self):
        graph = random_connected_graph(20, 0.2, seed=3)

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    async with await AsyncConnectorClient.connect(
                        port=server.port
                    ) as client:
                        with pytest.raises(ServerError) as missing:
                            await client.solve([987654])
                        with pytest.raises(ServerError) as bad_options:
                            await client.solve([0, 1], {"bogus": True})
                        # The raw envelope carries the failure markers.
                        empty = await client.request({"query": []})
                        assert empty["ok"] is False
                        assert empty["error_type"] == "ValueError"
                        unknown_op = await client.request({"op": "explode"})
                        assert unknown_op["ok"] is False
                        assert "unknown op" in unknown_op["error"]
                        # The connection still serves after four failures.
                        document = await client.solve(sorted(graph.nodes())[:2])
                        return missing.value, bad_options.value, document
            finally:
                await gateway.aclose()

        missing, bad_options, document = run(scenario())
        assert missing.error_type == "InvalidQueryError"
        assert bad_options.error_type == "ValueError"
        assert document["size"] >= 2

    def test_bad_query_in_shared_window_spares_concurrent_good_one(self):
        """The protocol promise: a request-level failure fails only that
        request — even when it shares a gateway window with valid ones."""
        graph = random_connected_graph(20, 0.2, seed=7)
        good_query = sorted(graph.nodes())[:3]

        async def scenario():
            service = ConnectorService(graph)
            # A wide, slow window so both requests land in the same one.
            gateway = AsyncGateway(service, max_batch=8, max_wait_ms=50.0)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    async with await AsyncConnectorClient.connect(
                        port=server.port
                    ) as client:
                        good, bad = await asyncio.gather(
                            client.solve(good_query),
                            client.solve([987654]),
                            return_exceptions=True,
                        )
                        return good, bad
            finally:
                await gateway.aclose()

        good, bad = run(scenario())
        assert isinstance(bad, ServerError)
        assert bad.error_type == "InvalidQueryError"
        assert not isinstance(good, Exception)
        reference = wiener_steiner(graph, good_query)
        assert good["nodes"] == canonical_sort(reference.nodes)

    def test_wire_error_paths_never_kill_the_connection(self):
        """The protocol's error contract over a *live* socket: a malformed
        JSON line, an unknown op, and a request missing its ``id`` each
        get an error (or ``id: null``) response, and the same connection
        keeps serving afterwards."""
        graph = random_connected_graph(18, 0.22, seed=12)
        good_query = sorted(graph.nodes())[:2]

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    try:
                        async def ask(raw: bytes) -> dict:
                            writer.write(raw)
                            await writer.drain()
                            return json.loads(await reader.readline())

                        malformed = await ask(b"this is not json\n")
                        unknown_op = await ask(b'{"op": "frobnicate", "id": 7}\n')
                        missing_id = await ask(b'{"op": "ping"}\n')
                        no_id_solve = await ask(
                            json.dumps({"query": good_query}).encode() + b"\n"
                        )
                        empty_object = await ask(b"{}\n")
                        survived = await ask(b'{"op": "ping", "id": 11}\n')
                        return (malformed, unknown_op, missing_id,
                                no_id_solve, empty_object, survived)
                    finally:
                        writer.close()
                        await writer.wait_closed()
            finally:
                await gateway.aclose()

        (malformed, unknown_op, missing_id, no_id_solve, empty_object,
         survived) = run(scenario())
        # a malformed line fails that request with a null id, not the link
        assert malformed["ok"] is False
        assert malformed["id"] is None
        assert malformed["error_type"] == "JSONDecodeError"
        # an unknown op echoes its id and names the valid ops
        assert unknown_op["ok"] is False
        assert unknown_op["id"] == 7
        assert "unknown op" in unknown_op["error"]
        # id is optional: an id-less control op succeeds with id null...
        assert missing_id["ok"] is True and missing_id["pong"] is True
        assert missing_id["id"] is None
        # ...and so does an id-less solve (the caller just can't pair it)
        assert no_id_solve["ok"] is True
        assert no_id_solve["id"] is None
        assert set(no_id_solve["result"]["query"]) == set(good_query)
        # an empty object is neither op nor solve: a per-request error
        assert empty_object["ok"] is False
        assert empty_object["id"] is None
        assert "query" in empty_object["error"]
        # after five abuses, the connection still serves
        assert survived == {"ok": True, "pong": True, "id": 11}

    def test_pipelining_cap_still_serves_everything(self):
        """max_pipelined throttles reads, it must never drop requests."""
        graph = random_connected_graph(18, 0.2, seed=11)
        nodes = sorted(graph.nodes())
        queries = [[nodes[i % 12], nodes[(i + 3) % 12]] for i in range(20)]

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service, max_batch=4, max_wait_ms=1.0)
            try:
                async with GatewayServer(
                    gateway, port=0, max_pipelined=3
                ) as server:
                    async with await AsyncConnectorClient.connect(
                        port=server.port
                    ) as client:
                        return await asyncio.gather(
                            *(client.solve(query) for query in queries)
                        )
            finally:
                await gateway.aclose()

        documents = run(scenario())
        assert len(documents) == len(queries)
        for query, document in zip(queries, documents):
            assert set(document["query"]) == set(query)

    def test_raw_request_needs_ok_checks(self):
        """client.request surfaces the raw envelope (ok flag + id echo)."""
        graph = random_connected_graph(16, 0.25, seed=4)

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    async with await AsyncConnectorClient.connect(
                        port=server.port
                    ) as client:
                        response = await client.request(
                            {"query": sorted(graph.nodes())[:2]}
                        )
                        return response
            finally:
                await gateway.aclose()

        response = run(scenario())
        assert response["ok"] is True
        assert response["id"] == 0
        assert "result" in response

    def test_sharded_backing_service_round_trip_and_teardown(self):
        graph = random_connected_graph(24, 0.18, seed=5)
        queries = [sorted(graph.nodes())[i:i + 3] for i in (0, 3, 6)]
        references = [wiener_steiner(graph, query) for query in queries]

        async def scenario(service):
            gateway = AsyncGateway(service, max_batch=4, max_wait_ms=2.0)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    async with await AsyncConnectorClient.connect(
                        port=server.port
                    ) as client:
                        documents = await asyncio.gather(
                            *(client.solve(query) for query in queries)
                        )
                        await client.shutdown_server()
                    await server.wait_shutdown()
                    return documents
            finally:
                await gateway.aclose()

        with ShardedConnectorService(graph, n_shards=2) as service:
            documents = run(scenario(service))
        for document, reference in zip(documents, references):
            assert document["nodes"] == canonical_sort(reference.nodes)
            assert document["metadata"]["root"] == reference.metadata["root"]
        assert_no_orphan_processes()

    def test_shutdown_honored_even_if_peer_hangs_up(self):
        """An accepted shutdown must stop the daemon even when the ack
        cannot be delivered (the supervisor fired-and-forgot)."""
        graph = random_connected_graph(16, 0.25, seed=8)

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    _, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    writer.write(b'{"op": "shutdown"}\n')
                    await writer.drain()
                    writer.transport.abort()  # hang up without reading
                    await asyncio.wait_for(server.wait_shutdown(), timeout=10)
                    return True
            finally:
                await gateway.aclose()

        assert run(scenario())

    def test_restarted_server_does_not_inherit_old_shutdown(self):
        graph = random_connected_graph(16, 0.25, seed=9)

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service)
            try:
                server = GatewayServer(gateway, port=0)
                async with server:
                    async with await AsyncConnectorClient.connect(
                        port=server.port
                    ) as client:
                        await client.shutdown_server()
                    await server.wait_shutdown()
                # Second run of the same object: the latched event from
                # run one must not make wait_shutdown fall through.
                async with server:
                    waiter = asyncio.ensure_future(server.wait_shutdown())
                    await asyncio.sleep(0.05)
                    assert not waiter.done()
                    async with await AsyncConnectorClient.connect(
                        port=server.port
                    ) as client:
                        document = await client.solve(sorted(graph.nodes())[:2])
                        await client.shutdown_server()
                    await asyncio.wait_for(waiter, timeout=10)
                    return document
            finally:
                await gateway.aclose()

        document = run(scenario())
        assert document["size"] >= 2

    def test_aclose_delivers_in_flight_responses_before_closing(self):
        """A request mid-solve when aclose() starts must still get its
        answer — the drain runs before transports are closed."""

        class SlowGateway:
            def __init__(self):
                self.release = asyncio.Event()

            async def asolve(self, query, options=None):
                await self.release.wait()
                return _FakeResult(frozenset(query))

        async def scenario():
            gateway = SlowGateway()
            async with GatewayServer(gateway, port=0) as server:
                client = await AsyncConnectorClient.connect(port=server.port)
                async with client:
                    pending = asyncio.ensure_future(client.solve([1, 2]))
                    await asyncio.sleep(0.02)  # request is in flight
                    closer = asyncio.ensure_future(server.aclose())
                    await asyncio.sleep(0.02)
                    assert not closer.done()  # blocked on the drain
                    gateway.release.set()
                    document = await asyncio.wait_for(pending, timeout=10)
                    await closer
                    return document

        document = run(scenario())
        assert set(document["nodes"]) == {1, 2}

    def test_shutdown_op_resolves_wait_shutdown(self):
        graph = random_connected_graph(16, 0.25, seed=6)

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service)
            try:
                server = await GatewayServer(gateway, port=0).start()
                waiter = asyncio.ensure_future(server.wait_shutdown())
                async with await AsyncConnectorClient.connect(
                    port=server.port
                ) as client:
                    await client.shutdown_server()
                await asyncio.wait_for(waiter, timeout=10)
                await server.aclose()
                return True
            finally:
                await gateway.aclose()

        assert run(scenario())


class TestServeCLI:
    """The acceptance path: `repro serve` as a real subprocess."""

    def test_serve_round_trip_and_clean_shutdown(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "football",
                "--port", "0", "--shards", "2", "--max-wait-ms", "1.0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            port = None
            for line in process.stdout:
                match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, "server never printed its port"

            async def drive():
                async with await AsyncConnectorClient.connect(
                    port=port
                ) as client:
                    document = await client.solve([0, 1, 2])
                    baseline = await client.solve([0, 1], {"method": "st"})
                    await client.shutdown_server()
                    return document, baseline

            document, baseline = run(drive())
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.communicate()

        assert process.returncode == 0, stderr
        assert stderr == ""
        assert "shutdown requested" in stdout
        assert document["query"] == [0, 1, 2]
        assert set(document["query"]) <= set(document["nodes"])
        assert baseline["method"] == "st"
        # The subprocess exited cleanly, so its shard children cannot have
        # survived it; also make sure *this* process leaked nothing.
        assert_no_orphan_processes()
