"""End-to-end tests for every experiment module (at reduced scale)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    case_studies,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table2,
    table3,
    table4,
    table5,
)


class TestFigure1:
    def test_reproduces_paper(self):
        panels = figure1.run()
        dc, sc = panels
        # Left panel: optimum is 43, adding faction leaders + a bridge.
        assert dc.exact_wiener == 43
        assert 1 in dc.exact.added_nodes
        assert dc.factions_spanned == 2
        # Right panel: optimum is 18, adding {1, 6}.
        assert sc.exact_wiener == 18
        assert sc.exact.added_nodes == frozenset([1, 6])
        assert sc.factions_spanned == 1
        assert "karate" in figure1.render(panels)


class TestFigure2:
    def test_reproduces_paper_numbers(self):
        result = figure2.run()
        assert result.wiener_line == 165
        assert result.wiener_one_root == 151
        assert result.wiener_both_roots == 142
        assert result.steiner_size == 10  # Steiner tree = the bare line

    def test_scaling_gap_monotone(self):
        rows = figure2.run_scaling((10, 20, 40))
        gaps = [row.gap for row in rows]
        assert gaps == sorted(gaps)
        text = figure2.render(figure2.run(), rows)
        assert "165" in text and "142" in text


class TestTable2:
    def test_reduced_run(self):
        rows = table2.run(
            datasets=("football",), query_sizes=(3, 5),
            node_budget=3000, time_budget_seconds=5.0,
        )
        assert len(rows) == 2
        for row in rows:
            # ws-q >= GU >= GL and valid error interval.
            assert row.solver_lower <= row.solver_upper <= row.ws_q + 1e-9
            assert row.error_low <= row.error_high + 1e-12
        assert "football" in table2.render(rows)


class TestTable3:
    def test_reduced_run(self):
        table = table3.run(datasets=("football",), query_size=4,
                           avg_distance=2.0, runs=1)
        stats = table["football"]
        assert set(stats) == {"ws-q", "st", "ppr", "cps", "ctp"}
        # The paper's headline: ws-q no larger than the community methods.
        assert stats["ws-q"].size <= stats["ctp"].size
        assert stats["ws-q"].size <= stats["ppr"].size
        rendered = table3.render(table)
        assert "Table 3" in rendered and "football" in rendered


class TestTable4:
    def test_reduced_run(self):
        rows = table4.run(datasets=("dblp",), sizes=(3,), queries_per_size=2)
        by_method = {row.method: row for row in rows}
        assert set(by_method) == {"ws-q", "st", "ppr", "cps", "ctp"}
        for row in rows:
            assert row.dc_size >= 3
            assert row.sc_size >= 3
        # Community methods blow up more on dc than ws-q does.
        assert by_method["cps"].ratio >= by_method["ws-q"].ratio * 0.5
        assert "dblp-dc" in table4.render(rows)


class TestTable5:
    def test_celebrities_added(self):
        result = table5.run()
        added = {user for group in result.added for user in group}
        assert "kdnuggets" in added or "drewconway" in added
        users = [row.user for row in result.influence]
        top = [u for u in users if u in ("kdnuggets", "drewconway")]
        assert top, "a celebrity must appear among the added users"
        rendered = table5.render(result)
        assert "Table 5" in rendered


class TestFigure3:
    def test_reduced_run(self):
        size_sweep, distance_sweep = figure3.run(
            dataset="football", sizes=(3, 5), distances=(2.0,), runs=1
        )
        assert size_sweep.xs == [3, 5]
        assert distance_sweep.xs == [2.0]
        series = size_sweep.series(lambda s: float(s.size))
        assert "ws-q" in series
        assert len(series["ws-q"]) == 2
        assert "Figure 3" in figure3.render(size_sweep, distance_sweep)


class TestFigure4:
    def test_reduced_run(self):
        results = figure4.run(puc_count=2, vienna_count=1)
        for suite, comparisons in results.items():
            for comparison in comparisons:
                assert comparison.wsq_size >= comparison.num_terminals
                assert comparison.wiener_ratio >= 0.8
        assert "CDF" in figure4.render(results)


class TestFigure5:
    def test_reduced_run(self):
        points = figure5.run_synthetic(
            families=("ER",), node_counts=(300,), query_sizes=(3, 6)
        )
        assert len(points) == 2
        assert all(p.seconds > 0 for p in points)
        assert "runtime" in figure5.render(points, "t")

    def test_scaling_exponent(self):
        points = [
            figure5.RuntimePoint("ER", 1000, 4000, 5, 1.0),
            figure5.RuntimePoint("ER", 2000, 8000, 5, 2.0),
            figure5.RuntimePoint("ER", 4000, 16000, 5, 4.0),
        ]
        slope = figure5.scaling_exponent(points, "nodes")
        assert slope == pytest.approx(1.0)


class TestCaseStudies:
    def test_ppi_connector_hits_hubs(self):
        result = case_studies.run()
        assert set(result.added_hubs) == {"p53", "HSP90", "GSK3B", "SNCA"}
        assert all(hop.disease_overlap for hop in result.next_hops)
        assert "Figure 6" in case_studies.render(result)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) >= {
            "table2", "table3", "table4", "table5",
            "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
        }
        for module in EXPERIMENTS.values():
            assert hasattr(module, "main")
