"""End-to-end tests for trace replay, SLO gating, and the recorder.

The full harness loop against an in-process tower: synthesize a trace →
replay it open-loop through a live :class:`GatewayServer` → check the
report (client latencies, server shed/coalesce deltas, the gateway's own
latency reservoir) → gate it with an SLO → spot-check replayed answers
bit-identical to one-shot solves.  The recording proxy closes the loop:
traffic recorded through it replays to the same answers.
"""

import asyncio
import random

import pytest

from helpers import assert_connector_identical, random_connected_graph
from repro.core.gateway import AsyncGateway, GatewayStats
from repro.core.service import ConnectorService
from repro.core.wiener_steiner import wiener_steiner
from repro.loadgen.replay import ReplayReport, percentile, replay_trace
from repro.loadgen.slo import SLO
from repro.loadgen.trace import RecordingProxy, Trace, TraceRecord, synthesize
from repro.serving.protocol import canonical_sort
from repro.serving.server import AsyncConnectorClient, GatewayServer
from repro.workloads import component_query


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


@pytest.fixture(scope="module")
def host_graph():
    return random_connected_graph(250, 0.03, seed=5)


@pytest.fixture(scope="module")
def trace(host_graph):
    rng = random.Random(0)
    pool = [tuple(component_query(host_graph, 4, rng)) for _ in range(6)]
    return synthesize(
        pool, 40, mean_gap_ms=4.0, zipf=1.2, burst_amplitude=0.5,
        burst_period_s=1.0, seed=3,
    )


async def _serve_and_replay(graph, trace, *, speed=8.0, keep_results=False):
    service = ConnectorService(graph)
    gateway = AsyncGateway(service, max_batch=8, max_wait_ms=1.0)
    try:
        async with GatewayServer(gateway, port=0) as server:
            report = await replay_trace(
                trace, server.host, server.port,
                speed=speed, keep_results=keep_results,
            )
        stats = gateway.stats()
    finally:
        await gateway.aclose()
    return report, stats


class TestPercentile:
    def test_nearest_rank(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0

    def test_empty_and_bounds(self):
        assert percentile([], 0.9) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestReplay:
    def test_full_loop_report(self, host_graph, trace):
        report, stats = run(_serve_and_replay(host_graph, trace))
        assert report.requests == len(trace)
        assert report.completed == report.requests
        assert report.errors == 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.throughput_rps > 0
        # The Zipf pool plus micro-batching must coalesce repeats.
        assert report.coalesced > 0
        assert 0 < report.coalesce_rate <= 1
        assert report.shed == 0 and report.shed_rate == 0.0
        # The server's stats payload rides along for deeper digging.
        assert "gateway" in report.server_stats

    def test_latency_reservoir_flows_through_stats(self, host_graph, trace):
        """Satellite: GatewayStats.percentile over the wire-visible
        reservoir tracks what the client measured."""
        report, stats = run(_serve_and_replay(host_graph, trace))
        assert stats.latency_samples
        assert len(stats.latency_samples) == stats.results_served
        server_p99_ms = stats.percentile(0.99) * 1000.0
        assert 0 < server_p99_ms <= report.p99_ms + 1.0
        # And the same samples arrive through the stats op as JSON.
        gateway_payload = report.server_stats["gateway"]
        assert len(gateway_payload["latency_samples"]) == stats.results_served

    def test_replayed_answers_bit_identical(self, host_graph, trace):
        """The identity contract holds under replayed load."""
        report, _ = run(
            _serve_and_replay(host_graph, trace, keep_results=True)
        )
        for record, payload in zip(trace.records, report.results):
            reference = wiener_steiner(host_graph, record.query)
            assert payload["nodes"] == canonical_sort(reference.nodes)
            assert payload["metadata"]["root"] == reference.metadata["root"]
            assert payload["wiener_index"] == reference.wiener_index

    def test_errors_counted_not_raised(self, host_graph):
        bad = Trace(
            (
                TraceRecord(0.0, (0, 1)),
                TraceRecord(0.0, (999999,)),  # unknown vertex
            )
        )
        report, _ = run(_serve_and_replay(host_graph, bad))
        assert report.completed == 1
        assert report.errors == 1
        assert report.error_messages
        assert report.error_rate == 0.5


class TestSlo:
    def test_evaluate_passing_and_failing(self, host_graph, trace):
        report, _ = run(_serve_and_replay(host_graph, trace))
        good = SLO(max_p99_ms=60_000.0, max_shed_rate=0.5,
                   max_error_rate=0.0, min_throughput_rps=0.001)
        verdict = good.evaluate(report)
        assert verdict.ok and not verdict.violations
        assert len(verdict.checks) == 4
        bad = SLO(max_p50_ms=1e-6, min_throughput_rps=1e9)
        verdict = bad.evaluate(report)
        assert not verdict.ok
        assert {c.name for c in verdict.violations} == {
            "max_p50_ms", "min_throughput_rps"
        }
        payload = verdict.to_payload()
        assert payload["ok"] is False and len(payload["checks"]) == 2

    def test_unset_bounds_not_checked(self):
        report = ReplayReport(
            requests=1, completed=1, errors=0, duration_s=1.0,
            p50_ms=5.0, p95_ms=5.0, p99_ms=5.0, shed=0, coalesced=0,
        )
        assert SLO().evaluate(report).ok
        assert SLO().evaluate(report).describe() == "no SLO bounds set"

    def test_from_payload_rejects_unknown_and_bad_types(self):
        with pytest.raises(ValueError):
            SLO.from_payload({"max_p9_ms": 1.0})
        with pytest.raises(ValueError):
            SLO.from_payload({"max_p50_ms": "fast"})
        with pytest.raises(ValueError):
            SLO.from_payload([1, 2])
        slo = SLO.from_payload({"max_p50_ms": 100, "max_shed_rate": None})
        assert slo.max_p50_ms == 100 and slo.max_shed_rate is None

    def test_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"max_p99_ms": 250.5}')
        assert SLO.from_file(path).max_p99_ms == 250.5


class TestRecordingProxy:
    def test_recorded_traffic_replays_identically(self, host_graph):
        rng = random.Random(1)
        queries = [tuple(component_query(host_graph, 4, rng))
                   for _ in range(4)]

        async def record_then_replay():
            service = ConnectorService(host_graph)
            gateway = AsyncGateway(service)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    async with RecordingProxy(
                        server.host, server.port
                    ) as proxy:
                        client = await AsyncConnectorClient.connect(
                            proxy.host, proxy.port
                        )
                        async with client:
                            assert await client.ping()  # control: unrecorded
                            live = [
                                await client.solve(query)
                                for query in queries
                            ]
                        recorded = proxy.to_trace(meta={"case": "test"})
                    replayed = await replay_trace(
                        recorded, server.host, server.port,
                        speed=10.0, keep_results=True,
                    )
            finally:
                await gateway.aclose()
            return recorded, live, replayed

        recorded, live, replayed = run(record_then_replay())
        assert len(recorded) == len(queries)
        assert recorded.records[0].offset == 0.0
        assert recorded.meta["case"] == "test"
        assert [list(r.query) for r in recorded.records] == [
            list(q) for q in queries
        ]
        # Round trip: record -> save/load -> replay gives the live answers.
        reloaded = Trace.loads(recorded.dumps())
        assert reloaded.records == recorded.records
        assert replayed.completed == len(queries)
        for live_payload, replay_payload in zip(live, replayed.results):
            assert replay_payload["nodes"] == live_payload["nodes"]
            assert replay_payload["wiener_index"] == live_payload["wiener_index"]


class TestCsrOnlyTower:
    """The stream-construction path: no dict Graph anywhere in serving."""

    def test_csr_only_service_identical(self, host_graph):
        from repro.graphs.csr import CSRGraph

        csr = CSRGraph.from_graph(host_graph)
        query = frozenset(component_query(host_graph, 4, random.Random(2)))
        reference = ConnectorService(host_graph).solve(query)
        bare = ConnectorService(None, csr=csr).solve(query)
        assert_connector_identical(bare, reference)
        assert bare.wiener_index == reference.wiener_index
        assert bare.density == reference.density

    def test_one_shot_accepts_csr(self, host_graph):
        from repro.graphs.csr import CSRGraph

        csr = CSRGraph.from_graph(host_graph)
        query = frozenset(component_query(host_graph, 4, random.Random(3)))
        assert_connector_identical(
            wiener_steiner(csr, query), wiener_steiner(host_graph, query)
        )

    def test_non_wsq_method_needs_graph(self, host_graph):
        from repro.core.options import SolveOptions
        from repro.errors import GraphError
        from repro.graphs.csr import CSRGraph

        csr = CSRGraph.from_graph(host_graph)
        service = ConnectorService(None, csr=csr)
        with pytest.raises(GraphError):
            service.solve(frozenset([0, 1]), SolveOptions(method="st"))
