"""Tests for the §6.6 parallel execution of WienerSteiner."""

import random

import pytest

from helpers import (
    assert_connector_identical,
    random_connected_graph,
    random_query_batch,
)
from repro.errors import InvalidQueryError
from repro.core.parallel import parallel_wiener_steiner, sharded_batch
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.components import nodes_connect


class TestParallelWienerSteiner:
    def test_matches_sequential_quality(self):
        g = random_connected_graph(120, 0.05, 7)
        rng = random.Random(7)
        query = rng.sample(sorted(g.nodes()), 5)
        sequential = wiener_steiner(g, query, selection="wiener")
        parallel = parallel_wiener_steiner(g, query, max_workers=2)
        assert parallel.wiener_index == sequential.wiener_index

    def test_contract(self):
        g = random_connected_graph(80, 0.08, 8)
        rng = random.Random(8)
        query = rng.sample(sorted(g.nodes()), 4)
        result = parallel_wiener_steiner(g, query, max_workers=2)
        assert set(query) <= set(result.nodes)
        assert nodes_connect(g, result.nodes)
        assert result.metadata["parallel"] is True
        assert result.metadata["root"] in set(query)

    def test_honors_caller_root_restriction(self):
        """Regression: solve_parallel_roots used to discard options.roots
        and sweep every query vertex."""
        from repro.core import ConnectorService, SolveOptions

        g = random_connected_graph(60, 0.1, 21)
        rng = random.Random(21)
        query = rng.sample(sorted(g.nodes()), 4)
        pinned = (query[1],)
        service = ConnectorService(g)
        result = service.solve_parallel_roots(
            query, SolveOptions(roots=pinned), max_workers=2
        )
        assert result.metadata["root"] == query[1]
        reference = service.solve(
            query, SolveOptions(roots=pinned, selection="wiener")
        )
        assert result.nodes == reference.nodes

    def test_single_vertex_query(self):
        g = random_connected_graph(20, 0.2, 9)
        only = next(iter(g.nodes()))
        result = parallel_wiener_steiner(g, [only])
        assert result.nodes == frozenset([only])

    def test_empty_query_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            parallel_wiener_steiner(triangle, [])

    def test_unknown_vertex_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            parallel_wiener_steiner(triangle, [0, 99])


class TestShardedBatch:
    def test_matches_one_shot_bit_for_bit(self):
        import multiprocessing

        g = random_connected_graph(48, 0.09, 10)
        rng = random.Random(10)
        batch = random_query_batch(g, rng, 3)
        results = sharded_batch(g, batch, n_shards=2)
        for query, result in zip(batch, results):
            assert_connector_identical(result, wiener_steiner(g, query))
        assert not multiprocessing.active_children()  # torn down with the batch
