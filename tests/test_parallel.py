"""Tests for the §6.6 parallel execution of WienerSteiner."""

import random

import pytest

from helpers import random_connected_graph
from repro.errors import InvalidQueryError
from repro.core.parallel import parallel_wiener_steiner
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.components import nodes_connect


class TestParallelWienerSteiner:
    def test_matches_sequential_quality(self):
        g = random_connected_graph(120, 0.05, 7)
        rng = random.Random(7)
        query = rng.sample(sorted(g.nodes()), 5)
        sequential = wiener_steiner(g, query, selection="wiener")
        parallel = parallel_wiener_steiner(g, query, max_workers=2)
        assert parallel.wiener_index == sequential.wiener_index

    def test_contract(self):
        g = random_connected_graph(80, 0.08, 8)
        rng = random.Random(8)
        query = rng.sample(sorted(g.nodes()), 4)
        result = parallel_wiener_steiner(g, query, max_workers=2)
        assert set(query) <= set(result.nodes)
        assert nodes_connect(g, result.nodes)
        assert result.metadata["parallel"] is True
        assert result.metadata["root"] in set(query)

    def test_single_vertex_query(self):
        g = random_connected_graph(20, 0.2, 9)
        only = next(iter(g.nodes()))
        result = parallel_wiener_steiner(g, [only])
        assert result.nodes == frozenset([only])

    def test_empty_query_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            parallel_wiener_steiner(triangle, [])

    def test_unknown_vertex_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            parallel_wiener_steiner(triangle, [0, 99])
