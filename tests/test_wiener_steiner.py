"""Tests for the WienerSteiner approximation algorithm (Algorithm 1)."""

import random

import pytest

from helpers import random_connected_graph
from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.core.exact import brute_force
from repro.core.wiener_steiner import (
    _lambda_grid,
    minimum_wiener_connector,
    wiener_steiner,
)
from repro.graphs.components import nodes_connect
from repro.graphs.generators import figure2_gadget, path_graph, star_graph
from repro.graphs.graph import Graph


class TestBasicContracts:
    def test_solution_is_connector(self):
        for seed in range(6):
            g = random_connected_graph(40, 0.1, seed + 600)
            rng = random.Random(seed)
            query = rng.sample(sorted(g.nodes()), 4)
            result = wiener_steiner(g, query)
            assert set(query) <= set(result.nodes)
            assert nodes_connect(g, result.nodes)
            assert result.wiener_index < float("inf")

    def test_single_query_vertex(self, path5):
        result = wiener_steiner(path5, [3])
        assert result.nodes == frozenset([3])
        assert result.wiener_index == 0.0

    def test_query_pair_gets_shortest_path(self):
        g = path_graph(7)
        result = wiener_steiner(g, [0, 6])
        assert result.nodes == frozenset(range(7))

    def test_alias(self):
        assert minimum_wiener_connector is wiener_steiner

    def test_empty_query_raises(self, path5):
        with pytest.raises(InvalidQueryError):
            wiener_steiner(path5, [])

    def test_unknown_vertex_raises(self, path5):
        with pytest.raises(InvalidQueryError):
            wiener_steiner(path5, [0, 99])

    def test_disconnected_query_raises(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            wiener_steiner(g, [0, 3])

    def test_metadata_populated(self):
        g = star_graph(6)
        result = wiener_steiner(g, [1, 2, 3])
        assert result.method == "ws-q"
        assert result.metadata["candidates"] >= 1
        assert result.metadata["root"] in {1, 2, 3}
        assert result.metadata["runtime_seconds"] >= 0


class TestQuality:
    def test_star_query_adds_hub(self):
        g = star_graph(8)
        result = wiener_steiner(g, [1, 2, 3, 4])
        assert 0 in result.nodes
        assert result.size == 5

    @pytest.mark.parametrize("seed", range(8))
    def test_close_to_optimum_on_small_graphs(self, seed):
        g = random_connected_graph(15, 0.22, seed + 610)
        rng = random.Random(seed)
        query = rng.sample(sorted(g.nodes()), 4)
        optimum = brute_force(g, query, max_candidates=15).wiener_index
        approx = wiener_steiner(g, query).wiener_index
        assert optimum <= approx
        # Theorem 4 guarantees O(1); empirically we stay well under 2x.
        assert approx <= 2 * optimum + 1e-9

    def test_figure2_within_constant(self):
        g = figure2_gadget(10)
        result = wiener_steiner(g, list(range(1, 11)))
        assert result.wiener_index <= 151  # optimum is 142

    def test_smaller_beta_never_worse(self):
        g = random_connected_graph(30, 0.12, 777)
        query = sorted(g.nodes())[:5]
        coarse = wiener_steiner(g, query, beta=4.0).wiener_index
        fine = wiener_steiner(g, query, beta=0.25).wiener_index
        assert fine <= coarse + 1e-9


class TestKnobs:
    def test_lambda_grid_covers_range(self):
        import math

        grid = _lambda_grid(100, beta=1.0)
        assert grid[0] == pytest.approx(1 / math.sqrt(2))
        assert grid[-1] == pytest.approx(10.0)
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_lambda_grid_invalid_beta(self):
        with pytest.raises(ValueError):
            _lambda_grid(10, beta=0.0)

    def test_explicit_lambda_values(self, two_triangles_bridge):
        result = wiener_steiner(
            two_triangles_bridge, [0, 4], lambda_values=[1.0]
        )
        assert nodes_connect(two_triangles_bridge, result.nodes)

    def test_selection_policies_agree_on_validity(self):
        g = random_connected_graph(25, 0.15, 55)
        query = sorted(g.nodes())[:4]
        for policy in ("a", "wiener", "auto"):
            result = wiener_steiner(g, query, selection=policy)
            assert nodes_connect(g, result.nodes)

    def test_selection_wiener_not_worse(self):
        for seed in range(4):
            g = random_connected_graph(25, 0.15, seed + 630)
            query = sorted(g.nodes())[:4]
            exact = wiener_steiner(g, query, selection="wiener").wiener_index
            proxy = wiener_steiner(g, query, selection="a").wiener_index
            assert exact <= proxy + 1e-9

    def test_invalid_selection_policy(self, path5):
        with pytest.raises(ValueError):
            wiener_steiner(path5, [0, 4], selection="bogus")

    def test_adjust_off_still_valid(self):
        g = random_connected_graph(30, 0.12, 88)
        query = sorted(g.nodes())[:4]
        result = wiener_steiner(g, query, adjust=False)
        assert nodes_connect(g, result.nodes)

    def test_custom_roots(self):
        g = star_graph(6)
        result = wiener_steiner(g, [1, 2], roots=[0])
        assert nodes_connect(g, result.nodes)
        assert result.metadata["root"] == 0

    def test_empty_roots_raises(self, path5):
        with pytest.raises(InvalidQueryError):
            wiener_steiner(path5, [0, 4], roots=[])

    def test_all_roots_not_worse_than_query_roots(self):
        g = random_connected_graph(20, 0.2, 99)
        query = sorted(g.nodes())[:3]
        restricted = wiener_steiner(g, query).wiener_index
        unrestricted = wiener_steiner(g, query, roots=list(g.nodes())).wiener_index
        assert unrestricted <= restricted + 1e-9
