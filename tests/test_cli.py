"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_experiments_have_subcommands(self):
        from repro.experiments import EXPERIMENTS

        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_query_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["query", "football", "1", "2", "3"])
        assert args.dataset == "football"
        assert args.vertices == [1, 2, 3]
        assert args.method == "ws-q"


class TestMain:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "experiments" in capsys.readouterr().out.lower()

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "football" in out

    def test_figure2_runs(self, capsys):
        assert main(["figure2"]) == 0
        assert "165" in capsys.readouterr().out

    def test_query_ws(self, capsys):
        assert main(["query", "football", "0", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "ws-q" in out

    def test_query_st(self, capsys):
        assert main(["query", "football", "0", "5", "--method", "st"]) == 0
        assert "st" in capsys.readouterr().out

    def test_query_bad_method(self, capsys):
        assert main(["query", "football", "0", "--method", "nope"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_query_bad_vertex(self, capsys):
        assert main(["query", "football", "999999"]) == 2
        assert "not in graph" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
