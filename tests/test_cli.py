"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_experiments_have_subcommands(self):
        from repro.experiments import EXPERIMENTS

        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_query_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["query", "football", "1", "2", "3"])
        assert args.dataset == "football"
        assert args.vertices == [1, 2, 3]
        assert args.method == "ws-q"

    def test_serve_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "football", "--port", "0", "--shards", "2"]
        )
        assert args.command == "serve"
        assert args.dataset == "football"
        assert args.port == 0
        assert args.shards == "2"  # parsed later: a count or a spec list
        assert args.max_batch == 32
        assert args.max_wait_ms == 2.0
        assert args.max_queue == 1024

    def test_shard_host_subcommand(self):
        parser = build_parser()
        args = parser.parse_args(["shard-host", "football", "--port", "0"])
        assert args.command == "shard-host"
        assert args.dataset == "football"
        assert args.host == "127.0.0.1"
        assert args.port == 0

    def test_parse_shards_counts_and_specs(self):
        from repro.cli import _parse_shards

        assert _parse_shards("0") == ("count", 0)
        assert _parse_shards(" 4 ") == ("count", 4)
        assert _parse_shards("10.0.0.5:8766,local") == (
            "specs", ["10.0.0.5:8766", "local"]
        )
        for bad in ("-2", "host:", "host:0", ","):
            with pytest.raises(ValueError):
                _parse_shards(bad)


class TestMain:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "experiments" in capsys.readouterr().out.lower()

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out
        assert "football" in out

    def test_figure2_runs(self, capsys):
        assert main(["figure2"]) == 0
        assert "165" in capsys.readouterr().out

    def test_query_ws(self, capsys):
        assert main(["query", "football", "0", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "ws-q" in out

    def test_query_st(self, capsys):
        assert main(["query", "football", "0", "5", "--method", "st"]) == 0
        assert "st" in capsys.readouterr().out

    def test_query_bad_method(self, capsys):
        assert main(["query", "football", "0", "--method", "nope"]) == 2
        assert "unknown method" in capsys.readouterr().err

    def test_query_bad_vertex(self, capsys):
        assert main(["query", "football", "999999"]) == 2
        err = capsys.readouterr().err
        assert "not in graph" in err
        assert "115 vertices" in err  # the actual labels, not an assumed range

    def test_query_bad_vertices_sorted_numerically(self, capsys):
        # repr-sorting would rank 1000 before 200; the canonical sort must not.
        assert main(["query", "football", "1000", "200"]) == 2
        assert "[200, 1000]" in capsys.readouterr().err

    def test_query_no_vertices(self, capsys):
        assert main(["query", "football"]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_query_batch_file(self, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("0 1 2\n# a comment\n3 4\n")
        assert main(["query", "football", "--batch", str(batch)]) == 0
        out = capsys.readouterr().out
        assert out.count("ws-q:") == 2
        assert "query [0, 1, 2]" in out

    def test_query_batch_prints_serving_footer(self, tmp_path, capsys):
        """Human-readable batch output must surface timing + warm hits."""
        import re

        batch = tmp_path / "queries.txt"
        batch.write_text("0 1 2\n3 4\n0 1 2\n")
        assert main(["query", "football", "--batch", str(batch)]) == 0
        out = capsys.readouterr().out
        footer = re.search(
            r"batch: 3 queries in \d+\.\d+s \(\d+\.\d+ ms/query, "
            r"(\d+) served warm, (\d+)% of batch\)",
            out,
        )
        assert footer, out
        assert int(footer.group(1)) >= 1  # the repeated query hit cache

    def test_query_batch_footer_with_shards(self, tmp_path, capsys):
        """The warm count folds in router dedup, so the same batch reports
        the same number sharded and unsharded."""
        import re

        batch = tmp_path / "queries.txt"
        batch.write_text("0 1 2\n3 4\n0 1 2\n")
        assert main(
            ["query", "football", "--batch", str(batch), "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        footer = re.search(r"(\d+) served warm", out)
        assert footer, out
        assert int(footer.group(1)) >= 1  # the duplicate, deduped in-flight

    def test_query_batch_footer_sharded_baseline_method(self, tmp_path, capsys):
        """Baseline methods route through the router's local fallback; its
        cache hits must still show up in the sharded footer."""
        import re

        batch = tmp_path / "queries.txt"
        batch.write_text("0 1\n3 4\n0 1\n")
        assert main(
            ["query", "football", "--batch", str(batch), "--method", "st",
             "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        footer = re.search(r"(\d+) served warm", out)
        assert footer, out
        assert int(footer.group(1)) >= 1  # local result-cache hit counted

    def test_query_single_has_no_footer(self, capsys):
        assert main(["query", "football", "0", "1", "2"]) == 0
        assert "batch:" not in capsys.readouterr().out

    def test_query_empty_batch_file_exits_zero(self, tmp_path, capsys):
        """An explicitly empty --batch file is an empty workload, not a
        usage error: clean `0 queries` footer, exit 0, and no
        division-by-zero in the timing averages."""
        batch = tmp_path / "empty.txt"
        batch.write_text("")
        assert main(["query", "football", "--batch", str(batch)]) == 0
        captured = capsys.readouterr()
        assert "batch: 0 queries" in captured.out
        assert "ms/query" not in captured.out  # no averages over nothing
        assert captured.err == ""

    def test_query_comments_only_batch_file_exits_zero(self, tmp_path, capsys):
        batch = tmp_path / "comments.txt"
        batch.write_text("# staging queries\n\n# none yet\n")
        assert main(["query", "football", "--batch", str(batch)]) == 0
        assert "batch: 0 queries" in capsys.readouterr().out

    def test_query_empty_batch_sharded_and_json(self, tmp_path, capsys):
        """The empty workload stays clean across the deployment knobs:
        sharded (no stats scatter to dead ends) and --json (empty results
        array, no footer)."""
        import json

        batch = tmp_path / "empty.json"
        batch.write_text("[]")
        assert main(
            ["query", "football", "--batch", str(batch), "--shards", "2"]
        ) == 0
        assert "batch: 0 queries" in capsys.readouterr().out
        assert main(
            ["query", "football", "--batch", str(batch), "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["results"] == []

    def test_query_empty_batch_still_validates_dataset(self, capsys, tmp_path):
        """Empty workload or not, a bad dataset name must still fail."""
        batch = tmp_path / "empty.txt"
        batch.write_text("")
        with pytest.raises(KeyError):
            main(["query", "mystery-dataset", "--batch", str(batch)])

    def test_query_shards_specs_rejected_cleanly_when_unreachable(
        self, tmp_path, capsys
    ):
        """--shards host:port with nobody listening is a topology error
        reported on stderr with exit 2, not a traceback."""
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        blocker.close()  # freed: connecting now gets ECONNREFUSED
        assert main(
            ["query", "football", "0", "1",
             "--shards", f"127.0.0.1:{port}"]
        ) == 2
        assert "cannot build the shard topology" in capsys.readouterr().err

    def test_query_malformed_shards_spec_rejected(self, capsys):
        assert main(
            ["query", "football", "0", "1", "--shards", "nonsense:"]
        ) == 2
        assert "shard spec" in capsys.readouterr().err

    def test_query_batch_json_file(self, tmp_path, capsys):
        batch = tmp_path / "queries.json"
        batch.write_text('[[0, 1], [2, 3]]')
        assert main(["query", "football", "--batch", str(batch)]) == 0
        assert capsys.readouterr().out.count("ws-q:") == 2

    def test_query_batch_flat_json_list_is_one_query(self, tmp_path, capsys):
        """`[1, 2]` is the obvious way to write one query; it must parse as
        one query, not crash with a TypeError."""
        batch = tmp_path / "flat.json"
        batch.write_text("[0, 1, 2]")
        assert main(["query", "football", "--batch", str(batch)]) == 0
        assert capsys.readouterr().out.count("ws-q:") == 1

    def test_query_batch_malformed_json_reports_cleanly(self, tmp_path, capsys):
        batch = tmp_path / "bad.json"
        batch.write_text('{"queries": 7}')
        assert main(["query", "football", "--batch", str(batch)]) == 2
        assert "cannot read batch file" in capsys.readouterr().err

    def test_query_batch_missing_file(self, tmp_path, capsys):
        assert main(
            ["query", "football", "--batch", str(tmp_path / "nope.txt")]
        ) == 2
        assert "cannot read batch file" in capsys.readouterr().err

    def test_query_json_output(self, capsys):
        import json

        assert main(["query", "football", "0", "1", "2", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["dataset"] == "football"
        assert document["method"] == "ws-q"
        [entry] = document["results"]
        assert entry["query"] == [0, 1, 2]
        assert set(entry["query"]) <= set(entry["nodes"])
        assert entry["wiener_index"] == pytest.approx(entry["wiener_index"])
        assert entry["metadata"]["backend"] in ("csr", "dict")

    def test_query_batch_matches_one_shot(self, tmp_path, capsys):
        """The served batch must return exactly the one-shot connectors."""
        import json

        from repro.core.wiener_steiner import wiener_steiner
        from repro.datasets import load_dataset

        batch = tmp_path / "queries.json"
        queries = [[0, 5, 9], [1, 2], [0, 5, 9]]
        batch.write_text(json.dumps(queries))
        assert main(
            ["query", "football", "--batch", str(batch), "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        graph = load_dataset("football")
        for query, entry in zip(queries, document["results"]):
            expected = wiener_steiner(graph, query)
            assert entry["nodes"] == sorted(expected.nodes)

    def test_query_sharded_batch_matches_unsharded(self, tmp_path, capsys):
        """--shards N must be an invisible deployment knob: same JSON
        connectors, shard-routing metadata aside."""
        import json

        batch = tmp_path / "queries.json"
        batch.write_text(json.dumps([[0, 5, 9], [1, 2], [0, 5, 9]]))
        assert main(["query", "football", "--batch", str(batch), "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(
            ["query", "football", "--batch", str(batch), "--json",
             "--shards", "2"]
        ) == 0
        sharded = json.loads(capsys.readouterr().out)
        for a, b in zip(plain["results"], sharded["results"]):
            assert a["nodes"] == b["nodes"]
            assert a["metadata"]["root"] == b["metadata"]["root"]
        assert all(e["metadata"]["sharded"] for e in sharded["results"])
        assert all(e["metadata"]["shards"] == 2 for e in sharded["results"])

    def test_query_negative_shards_rejected(self, capsys):
        assert main(["query", "football", "0", "1", "--shards", "-2"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_serve_rejects_bad_tunables(self, capsys):
        assert main(["serve", "football", "--shards", "-1"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["serve", "football", "--port", "-5"]) == 2
        assert "--port" in capsys.readouterr().err
        assert main(["serve", "football", "--port", "70000"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_serve_reports_bind_failure_cleanly(self, capsys):
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            assert main(["serve", "football", "--port", str(port)]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()
        # Tunable rules live in the AsyncGateway constructor (one source
        # of truth); the CLI relays its message with exit 2.
        assert main(["serve", "football", "--max-batch", "0"]) == 2
        assert "max_batch" in capsys.readouterr().err
        assert main(["serve", "football", "--max-wait-ms", "-1"]) == 2
        assert "max_wait_ms" in capsys.readouterr().err
        assert main(["serve", "football", "--max-queue", "0"]) == 2
        assert "max_queue" in capsys.readouterr().err

    def test_query_json_matches_server_document_shape(self, capsys):
        """The CLI --json per-result documents are the server's payloads."""
        import json

        from repro.core.wiener_steiner import wiener_steiner
        from repro.datasets import load_dataset
        from repro.serving.protocol import result_to_payload

        assert main(["query", "football", "0", "1", "2", "--json"]) == 0
        [entry] = json.loads(capsys.readouterr().out)["results"]
        reference = result_to_payload(
            wiener_steiner(load_dataset("football"), [0, 1, 2])
        )
        reference["metadata"].pop("runtime_seconds", None)
        entry["metadata"].pop("runtime_seconds", None)
        assert entry == reference

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
