"""Tests for the exact solvers: bounds, branch-and-bound, LP relaxation."""

import math
import random

import pytest

from helpers import random_connected_graph
from repro.errors import InvalidQueryError, ReproError
from repro.core.exact import brute_force
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.generators import figure2_gadget, path_graph, star_graph
from repro.solvers import (
    candidate_pool,
    flow_lp_lower_bound,
    query_distance_maps,
    query_pair_bound,
    solve_exact,
    vertex_margin,
)


class TestBounds:
    def test_query_pair_bound_on_path(self):
        g = path_graph(6)
        maps = query_distance_maps(g, [0, 5])
        assert query_pair_bound([0, 5], maps) == 5.0

    def test_vertex_margin(self):
        g = path_graph(5)
        maps = query_distance_maps(g, [0, 4])
        assert vertex_margin(2, [0, 4], maps) == 4.0

    def test_pool_prunes_far_vertices(self):
        g = star_graph(8)
        maps = query_distance_maps(g, [1, 2])
        # d(1,2) = 2; UB barely above it -> only the hub can help.
        pool = candidate_pool(g, [1, 2], upper_bound=2 + 2.5, distance_maps=maps)
        assert pool == [0]

    def test_pool_ordering_by_margin(self):
        g = path_graph(7)
        pool = candidate_pool(g, [0, 6], upper_bound=1000.0)
        maps = query_distance_maps(g, [0, 6])
        margins = [vertex_margin(v, [0, 6], maps) for v in pool]
        assert margins == sorted(margins)

    def test_bound_is_admissible(self):
        for seed in range(5):
            g = random_connected_graph(14, 0.25, seed + 750)
            rng = random.Random(seed)
            q = rng.sample(sorted(g.nodes()), 3)
            maps = query_distance_maps(g, q)
            bound = query_pair_bound(q, maps)
            optimum = brute_force(g, q, max_candidates=14).wiener_index
            assert bound <= optimum + 1e-9


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        g = random_connected_graph(14, 0.22, seed + 760)
        rng = random.Random(seed)
        q = rng.sample(sorted(g.nodes()), 4)
        expected = brute_force(g, q, max_candidates=14).wiener_index
        outcome = solve_exact(g, q)
        assert outcome.optimal
        assert outcome.upper_bound == expected
        assert outcome.lower_bound == expected
        assert outcome.gap == 0.0

    def test_figure2(self):
        outcome = solve_exact(figure2_gadget(10), list(range(1, 11)))
        assert outcome.optimal
        assert outcome.upper_bound == 142
        assert outcome.result.nodes >= {"r1", "r2"}

    def test_result_is_connector(self):
        g = random_connected_graph(20, 0.2, 3)
        q = sorted(g.nodes())[:4]
        outcome = solve_exact(g, q)
        from repro.graphs.components import nodes_connect

        assert nodes_connect(g, outcome.result.nodes)
        assert set(q) <= set(outcome.result.nodes)

    def test_budget_exhaustion_gives_valid_interval(self):
        g = random_connected_graph(30, 0.15, 4)
        q = sorted(g.nodes())[:6]
        tight = solve_exact(g, q, node_budget=3)
        assert tight.lower_bound <= tight.upper_bound
        full = solve_exact(g, q, node_budget=500_000)
        if full.optimal:
            assert tight.lower_bound <= full.upper_bound <= tight.upper_bound

    def test_time_budget(self):
        g = random_connected_graph(40, 0.12, 5)
        q = sorted(g.nodes())[:8]
        outcome = solve_exact(g, q, time_budget_seconds=0.05)
        assert outcome.lower_bound <= outcome.upper_bound
        assert outcome.runtime_seconds < 10

    def test_never_worse_than_warm_start(self):
        for seed in range(4):
            g = random_connected_graph(25, 0.15, seed + 770)
            q = sorted(g.nodes())[:4]
            ws = wiener_steiner(g, q)
            outcome = solve_exact(g, q, initial=ws, node_budget=10)
            assert outcome.upper_bound <= ws.wiener_index

    def test_empty_query_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            solve_exact(triangle, [])

    def test_strengthen_modes_agree(self):
        g = random_connected_graph(16, 0.2, 6)
        q = sorted(g.nodes())[:3]
        on = solve_exact(g, q, strengthen=True)
        off = solve_exact(g, q, strengthen=False)
        assert on.upper_bound == off.upper_bound


class TestLP:
    def test_lower_bounds_optimum(self):
        for seed in range(4):
            g = random_connected_graph(14, 0.25, seed + 780)
            rng = random.Random(seed)
            q = rng.sample(sorted(g.nodes()), 3)
            lp = flow_lp_lower_bound(g, q)
            optimum = brute_force(g, q, max_candidates=14).wiener_index
            assert lp.status == "optimal"
            assert lp.value <= optimum + 1e-6

    def test_at_least_query_pair_bound(self):
        g = random_connected_graph(14, 0.25, 8)
        q = sorted(g.nodes())[:3]
        maps = query_distance_maps(g, q)
        base = query_pair_bound(q, maps)
        lp = flow_lp_lower_bound(g, q, extended_pairs=False)
        assert lp.value == pytest.approx(base, abs=1e-6)

    def test_extended_pairs_not_weaker(self):
        g = random_connected_graph(12, 0.3, 9)
        q = sorted(g.nodes())[:3]
        plain = flow_lp_lower_bound(g, q, extended_pairs=False)
        extended = flow_lp_lower_bound(g, q, extended_pairs=True)
        assert extended.value >= plain.value - 1e-6

    def test_size_guard(self):
        g = random_connected_graph(200, 0.05, 10)
        with pytest.raises(ReproError):
            flow_lp_lower_bound(g, sorted(g.nodes())[:30])

    def test_empty_query_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            flow_lp_lower_bound(triangle, [])

    def test_unknown_query_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            flow_lp_lower_bound(triangle, [99])

    def test_exact_on_single_pair(self):
        g = path_graph(5)
        lp = flow_lp_lower_bound(g, [0, 4], extended_pairs=False)
        assert lp.value == pytest.approx(4.0, abs=1e-6)
