"""Property/fuzz and fault-path tests for the asyncio serving gateway.

Two contracts under test:

* **identity** — connectors returned through
  :meth:`AsyncGateway.asolve` are bit-identical to one-shot
  ``wiener_steiner`` for randomized concurrent submission orders, any
  window configuration (``max_batch`` 1 vs 64, zero vs real wait), over a
  single :class:`ConnectorService` and over a 2-shard
  :class:`ShardedConnectorService`, including after ``aclose()``/reopen;
* **scheduling semantics** — cross-arrival coalescing shares one solve
  between identical in-flight requests, a failing window fails only its
  own futures, ``aclose()`` resolves everything it drained, and a full
  admission queue sheds ``try_solve`` callers (counted) instead of
  growing without bound.

The scheduling tests run against a deterministic stub service whose
``solve_many`` can be held open or poisoned on cue — timing enters only
through generous safety timeouts, never through sleeps the assertions
depend on.
"""

import asyncio
import random
import threading

import pytest

from helpers import (
    assert_connector_identical,
    assert_no_orphan_processes,
    random_connected_graph,
    random_query_batch,
)
from repro.core.gateway import (
    AsyncGateway,
    GatewayClosedError,
    GatewayOverloadedError,
    GatewayStats,
)
from repro.core.options import SolveOptions
from repro.core.service import ConnectorService
from repro.core.sharded import ShardedConnectorService
from repro.core.wiener_steiner import wiener_steiner

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: (max_batch, max_wait_ms) — degenerate windows of one, wide windows.
WINDOW_CONFIGS = ((1, 0.0), (64, 5.0), (4, 1.0))

#: Gateways deliberately orphaned on a closed loop by the cross-loop
#: misuse test; kept alive so their pending batchers are never GC'd
#: mid-session (see test_reuse_across_loops_without_aclose_fails_clearly).
_CROSS_LOOP_ORPHANS: list = []


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=60))


class StubService:
    """A deterministic backing service for scheduling tests.

    ``solve_many`` records each batch, optionally blocks on a
    :class:`threading.Event` (so a test can hold a window "in flight" at
    will — it runs on the gateway's executor thread, never the loop), and
    raises for poisoned queries.  Results are plain tuples: the gateway
    treats them as opaque.
    """

    options = SolveOptions()

    def __init__(self, gate: threading.Event | None = None, poison=None) -> None:
        self.gate = gate
        self.poison = poison
        self.calls: list[list[frozenset]] = []

    def solve_many(self, queries, options=None):
        batch = [frozenset(query) for query in queries]
        self.calls.append(batch)
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        if self.poison is not None and self.poison in batch:
            raise RuntimeError(f"poisoned query {sorted(self.poison)}")
        return [("solved", query, options) for query in batch]

    def stats(self):
        return ("stub-stats", len(self.calls))


class TestGatewayIdentity:
    """The bit-identity fuzz of the acceptance criteria."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("max_batch,max_wait_ms", WINDOW_CONFIGS)
    def test_concurrent_submission_matches_one_shot(
        self, seed, max_batch, max_wait_ms
    ):
        rng = random.Random(seed)
        graph = random_connected_graph(36, 0.12, seed=seed + 7)
        queries = random_query_batch(graph, rng, 10)
        queries += [queries[rng.randrange(len(queries))] for _ in range(4)]
        rng.shuffle(queries)
        references = [wiener_steiner(graph, query) for query in queries]

        async def submit():
            service = ConnectorService(graph)
            async with AsyncGateway(
                service, max_batch=max_batch, max_wait_ms=max_wait_ms
            ) as gateway:
                return await asyncio.gather(
                    *(gateway.asolve(query) for query in queries)
                )

        results = run(submit())
        for result, reference in zip(results, references):
            assert_connector_identical(result, reference)

    @pytest.mark.parametrize("max_batch,max_wait_ms", WINDOW_CONFIGS)
    def test_gateway_over_shards_matches_one_shot(self, max_batch, max_wait_ms):
        rng = random.Random(99)
        graph = random_connected_graph(30, 0.15, seed=3)
        queries = random_query_batch(graph, rng, 8)
        queries += queries[:3]  # in-flight duplicates
        rng.shuffle(queries)
        references = [wiener_steiner(graph, query) for query in queries]

        async def submit(service):
            async with AsyncGateway(
                service, max_batch=max_batch, max_wait_ms=max_wait_ms
            ) as gateway:
                return await asyncio.gather(
                    *(gateway.asolve(query) for query in queries)
                )

        with ShardedConnectorService(graph, n_shards=2) as service:
            results = run(submit(service))
        for result, reference in zip(results, references):
            assert_connector_identical(result, reference)
        assert_no_orphan_processes()

    def test_aclose_then_reopen_stays_identical(self):
        rng = random.Random(5)
        graph = random_connected_graph(28, 0.15, seed=11)
        queries = random_query_batch(graph, rng, 6)
        references = [wiener_steiner(graph, query) for query in queries]

        async def two_runs():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service, max_batch=3, max_wait_ms=1.0)
            first = await asyncio.gather(
                *(gateway.asolve(query) for query in queries)
            )
            await gateway.aclose()
            # Reopen: the same gateway object serves again (warm service).
            second = await asyncio.gather(
                *(gateway.asolve(query) for query in reversed(queries))
            )
            await gateway.aclose()
            return first, list(reversed(second))

        first, second = run(two_runs())
        for result, reference in zip(first, references):
            assert_connector_identical(result, reference)
        for result, reference in zip(second, references):
            assert_connector_identical(result, reference)

    def test_per_request_options_are_honored(self):
        graph = random_connected_graph(24, 0.18, seed=21)
        query = sorted(graph.nodes())[:4]
        exact = SolveOptions(selection="wiener")
        reference = wiener_steiner(graph, query, selection="wiener")

        async def submit():
            async with AsyncGateway(ConnectorService(graph)) as gateway:
                # Mixed options in one window must split into per-options
                # solve_many calls, not collapse onto one request's opts.
                default_result, exact_result = await asyncio.gather(
                    gateway.asolve(query), gateway.asolve(query, exact)
                )
                return default_result, exact_result

        default_result, exact_result = run(submit())
        assert_connector_identical(exact_result, reference)
        assert_connector_identical(default_result, wiener_steiner(graph, query))


class TestGatewayScheduling:
    """Batching/coalescing semantics against the deterministic stub."""

    def test_coalesces_identical_requests_across_arrival_time(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(service, max_batch=1, max_wait_ms=0.0)
            first = asyncio.ensure_future(gateway.asolve([1, 2]))
            # Wait until the first window is actually dispatched (held
            # open by the gate), so later arrivals coalesce onto a key
            # that is in flight, not merely queued.
            while gateway.stats().windows_dispatched == 0:
                await asyncio.sleep(0.005)
            duplicate_a = asyncio.ensure_future(gateway.asolve([2, 1]))
            duplicate_b = asyncio.ensure_future(gateway.asolve([1, 2]))
            other = asyncio.ensure_future(gateway.asolve([3, 4]))
            await asyncio.sleep(0.02)  # let the duplicates reach admission
            gate.set()
            results = await asyncio.gather(
                first, duplicate_a, duplicate_b, other
            )
            stats = gateway.stats()
            await gateway.aclose()
            return results, stats

        results, stats = run(scenario())
        assert results[0] is results[1] is results[2]
        assert results[3] is not results[0]
        assert stats.coalesced == 2
        # The duplicates never reached the service: one call for [1, 2],
        # one for [3, 4].
        assert [sorted(map(sorted, call)) for call in service.calls] == [
            [[1, 2]],
            [[3, 4]],
        ]

    def test_windows_close_on_max_batch(self):
        service = StubService()

        async def scenario():
            # A long wait window: only the size bound can close it.
            async with AsyncGateway(
                service, max_batch=3, max_wait_ms=10_000.0
            ) as gateway:
                await asyncio.gather(
                    *(gateway.asolve([i, i + 1]) for i in range(6))
                )
                return gateway.stats()

        stats = run(scenario())
        assert stats.windows_dispatched == 2
        assert stats.window_sizes == (3, 3)
        assert stats.mean_window_size == 3.0

    def test_failing_request_fails_only_itself_in_a_shared_window(self):
        service = StubService(poison=frozenset([666]))

        async def scenario():
            gateway = AsyncGateway(service, max_batch=4, max_wait_ms=5.0)
            good = asyncio.ensure_future(gateway.asolve([1, 2]))
            bad = asyncio.ensure_future(gateway.asolve([666]))
            with pytest.raises(RuntimeError, match="poisoned"):
                await asyncio.shield(bad)
            # Same window, same solve_many group — the group is re-solved
            # per request, so the valid window-mate still succeeds...
            good_result = await asyncio.shield(good)
            # ...and the gateway survives: the next request solves fine.
            after = await gateway.asolve([7, 8])
            stats = gateway.stats()
            await gateway.aclose()
            return good_result, after, stats

        good_result, after, stats = run(scenario())
        assert good_result[1] == frozenset([1, 2])
        assert after[0] == "solved" and after[1] == frozenset([7, 8])
        assert stats.failures == 1
        assert stats.results_served == 2

    def test_failure_is_isolated_per_options_group(self):
        service = StubService(poison=frozenset([666]))
        other_options = SolveOptions(beta=2.0)

        async def scenario():
            async with AsyncGateway(
                service, max_batch=4, max_wait_ms=5.0
            ) as gateway:
                good = asyncio.ensure_future(
                    gateway.asolve([1, 2], other_options)
                )
                bad = asyncio.ensure_future(gateway.asolve([666]))
                with pytest.raises(RuntimeError, match="poisoned"):
                    await asyncio.shield(bad)
                # Different options ⇒ different solve_many group in the
                # same window ⇒ unaffected by the poisoned group.
                return await good

        result = run(scenario())
        assert result[1] == frozenset([1, 2])
        assert result[2] == other_options

    def test_aclose_during_pending_windows_resolves_every_future(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(service, max_batch=2, max_wait_ms=0.0)
            futures = [
                asyncio.ensure_future(gateway.asolve([i, i + 1]))
                for i in range(8)
            ]
            await asyncio.sleep(0.02)  # some windows dispatched, some queued
            closer = asyncio.ensure_future(gateway.aclose())
            await asyncio.sleep(0.02)
            gate.set()
            await closer
            return await asyncio.gather(*futures), gateway.stats()

        results, stats = run(scenario())
        assert len(results) == 8
        assert {result[1] for result in results} == {
            frozenset([i, i + 1]) for i in range(8)
        }
        assert stats.results_served == 8
        assert stats.in_flight == 0 and stats.queued == 0

    def test_asolve_while_draining_is_refused(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(service, max_batch=1, max_wait_ms=0.0)
            pending = asyncio.ensure_future(gateway.asolve([1, 2]))
            await asyncio.sleep(0.01)
            closer = asyncio.ensure_future(gateway.aclose())
            await asyncio.sleep(0.01)
            with pytest.raises(GatewayClosedError):
                await gateway.asolve([3, 4])
            gate.set()
            await closer
            await pending

        run(scenario())

    def test_full_queue_sheds_try_solve_and_counts_it(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(
                service,
                max_batch=1,
                max_wait_ms=0.0,
                max_queue=1,
                max_pending_windows=1,
            )
            admitted = [asyncio.ensure_future(gateway.asolve([0, 1]))]
            # Fill the pipeline: one window in flight (held by the gate),
            # one staged in the batcher, one in the queue.
            for base in (2, 4):
                while gateway.stats().queued > 0:
                    await asyncio.sleep(0.005)
                admitted.append(
                    asyncio.ensure_future(gateway.asolve([base, base + 1]))
                )
            await asyncio.sleep(0.02)
            assert gateway.stats().queued == 1
            with pytest.raises(GatewayOverloadedError):
                gateway.try_solve([6, 7])
            shed_stats = gateway.stats()
            gate.set()
            results = await asyncio.gather(*admitted)
            await gateway.aclose()
            return results, shed_stats, gateway.stats()

        results, shed_stats, final_stats = run(scenario())
        assert shed_stats.shed == 1
        assert len(results) == 3
        # The shed request never reached the service…
        assert frozenset([6, 7]) not in {
            query for call in service.calls for query in call
        }
        # …and did not leave a stale in-flight key behind.
        assert final_stats.in_flight == 0

    def test_try_solve_coalesces_onto_inflight_future(self):
        service = StubService()

        async def scenario():
            async with AsyncGateway(
                service, max_batch=8, max_wait_ms=50.0
            ) as gateway:
                first = gateway.try_solve([1, 2])
                second = gateway.try_solve([2, 1])
                return await first, await second, gateway.stats()

        result, coalesced_result, stats = run(scenario())
        assert result is coalesced_result  # one solve, shared result
        assert result[1] == frozenset([1, 2])
        assert stats.coalesced == 1 and stats.admitted == 1

    def test_cancelling_try_solve_awaiter_spares_coalescers(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(service, max_batch=8, max_wait_ms=50.0)
            shared = asyncio.ensure_future(gateway.asolve([1, 2]))
            await asyncio.sleep(0.01)
            impatient = gateway.try_solve([2, 1])
            with pytest.raises(asyncio.TimeoutError):
                # The timeout cancels only the shield wrapper try_solve
                # returned, never the coalesced solve underneath it.
                await asyncio.wait_for(impatient, timeout=0.05)
            gate.set()
            result = await shared
            await gateway.aclose()
            return result

        result = run(scenario())
        assert result[1] == frozenset([1, 2])

    def test_crashed_batcher_fails_stranded_futures_on_reopen(self):
        """A batcher cancelled out from under the gateway (framework scope
        teardown) must not strand queued futures: the next request fails
        them loudly and the gateway rebuilds."""
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(
                service, max_batch=1, max_wait_ms=0.0, max_pending_windows=1
            )
            dispatched = asyncio.ensure_future(gateway.asolve([0, 1]))
            staged = asyncio.ensure_future(gateway.asolve([2, 3]))
            queued = asyncio.ensure_future(gateway.asolve([4, 5]))
            await asyncio.sleep(0.02)
            gateway._batcher.cancel()  # the crash
            await asyncio.sleep(0.01)
            gate.set()
            # The already-dispatched window still resolves...
            first = await dispatched
            # ...and the next request sweeps the stranded futures before
            # rebuilding, instead of letting them (and any future
            # coalescers) hang forever.
            reopened = await gateway.asolve([9, 9])
            with pytest.raises(GatewayClosedError, match="abandoned"):
                await asyncio.shield(staged)
            with pytest.raises(GatewayClosedError, match="abandoned"):
                await asyncio.shield(queued)
            await gateway.aclose()
            return first, reopened

        first, reopened = run(scenario())
        assert first[1] == frozenset([0, 1])
        assert reopened[1] == frozenset([9, 9])

    def test_aclose_after_batcher_crash_resolves_everything(self):
        """aclose() on an externally-cancelled batcher must not re-raise
        into the (non-cancelled) caller, and must still sweep stranded
        futures and shut the executor down."""
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(
                service, max_batch=1, max_wait_ms=0.0, max_pending_windows=1
            )
            dispatched = asyncio.ensure_future(gateway.asolve([0, 1]))
            staged = asyncio.ensure_future(gateway.asolve([2, 3]))
            queued = asyncio.ensure_future(gateway.asolve([4, 5]))
            await asyncio.sleep(0.02)
            gateway._batcher.cancel()  # the crash
            await asyncio.sleep(0.01)
            gate.set()
            first = await dispatched  # in-flight window still resolves
            await gateway.aclose()  # must not raise CancelledError
            with pytest.raises(GatewayClosedError):
                await asyncio.shield(staged)
            with pytest.raises(GatewayClosedError):
                await asyncio.shield(queued)
            reopened = await gateway.asolve([9, 9])
            await gateway.aclose()
            return first, reopened

        first, reopened = run(scenario())
        assert first[1] == frozenset([0, 1])
        assert reopened[1] == frozenset([9, 9])

    def test_concurrent_aclose_calls_are_safe(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(service, max_batch=1, max_wait_ms=0.0)
            pending = asyncio.ensure_future(gateway.asolve([1, 2]))
            await asyncio.sleep(0.01)
            closers = [
                asyncio.ensure_future(gateway.aclose()) for _ in range(3)
            ]
            await asyncio.sleep(0.02)
            gate.set()
            await asyncio.gather(*closers)  # must not crash on nulled state
            result = await pending
            # And the gateway still reopens cleanly afterwards.
            reopened = await gateway.asolve([3, 4])
            await gateway.aclose()
            return result, reopened

        result, reopened = run(scenario())
        assert result[1] == frozenset([1, 2])
        assert reopened[1] == frozenset([3, 4])

    def test_cancelled_backpressured_caller_does_not_cancel_coalescers(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(
                service,
                max_batch=1,
                max_wait_ms=0.0,
                max_queue=1,
                max_pending_windows=1,
            )
            earlier = [asyncio.ensure_future(gateway.asolve([0, 1]))]
            for base in (2, 4):
                while gateway.stats().queued > 0:
                    await asyncio.sleep(0.005)
                earlier.append(
                    asyncio.ensure_future(gateway.asolve([base, base + 1]))
                )
            await asyncio.sleep(0.02)
            assert gateway.stats().queued == 1  # pipeline saturated
            # Creator blocks in queue.put backpressure; a second caller
            # coalesces onto its future before it is cancelled.
            creator = asyncio.ensure_future(gateway.asolve([6, 7]))
            await asyncio.sleep(0.01)
            coalescer = asyncio.ensure_future(gateway.asolve([7, 6]))
            await asyncio.sleep(0.01)
            creator.cancel()
            # The coalescer must resolve deterministically — either the
            # handed-off solve or a clean overload error, never a hang or
            # a CancelledError it did not cause.
            try:
                outcome = await asyncio.wait_for(coalescer, timeout=10)
            except GatewayOverloadedError:
                outcome = "shed"
            gate.set()
            await asyncio.gather(*earlier)
            await gateway.aclose()
            return outcome

        outcome = run(scenario())
        assert outcome == "shed" or outcome[1] == frozenset([6, 7])

    def test_aservice_stats_serializes_with_windows(self):
        gate = threading.Event()
        service = StubService(gate=gate)

        async def scenario():
            gateway = AsyncGateway(service, max_batch=1, max_wait_ms=0.0)
            pending = asyncio.ensure_future(gateway.asolve([1, 2]))
            while gateway.stats().windows_dispatched == 0:
                await asyncio.sleep(0.005)
            # The window is mid-solve on the executor thread: a service
            # snapshot must queue behind it, not run concurrently.
            snapshot = asyncio.ensure_future(gateway.aservice_stats())
            await asyncio.sleep(0.02)
            assert not snapshot.done()
            gate.set()
            stats = await asyncio.wait_for(snapshot, timeout=10)
            await pending
            await gateway.aclose()
            # Idle gateway: the direct-call path.
            idle_stats = await gateway.aservice_stats()
            return stats, idle_stats

        stats, idle_stats = run(scenario())
        assert stats[0] == "stub-stats"
        assert idle_stats[0] == "stub-stats"

    def test_window_size_history_is_bounded(self):
        service = StubService()

        async def scenario():
            async with AsyncGateway(
                service, max_batch=1, max_wait_ms=0.0
            ) as gateway:
                for start in range(0, 600, 2):
                    await gateway.asolve([start, start + 1])
                return gateway.stats()

        stats = run(scenario())
        assert stats.windows_dispatched == 300
        assert stats.window_size_sum == 300
        assert len(stats.window_sizes) <= 256  # recent sample, not history
        assert stats.mean_window_size == 1.0

    @pytest.mark.filterwarnings(
        # The simulated misuse inherently leaves the old loop's batcher
        # coroutine to be GC'd un-awaited; that warning is the scenario,
        # not a defect of the test.
        "ignore::pytest.PytestUnraisableExceptionWarning"
    )
    def test_reuse_across_loops_without_aclose_fails_clearly(self):
        service = StubService()
        gateway = AsyncGateway(service, max_batch=4, max_wait_ms=1.0)

        async def first():
            return await gateway.asolve([1, 2])

        async def second():
            with pytest.raises(GatewayClosedError, match="another event loop"):
                await gateway.asolve([3, 4])

        # run_until_complete + close, without cancelling pending tasks —
        # asyncio.run would cancel the batcher (making it look crashed,
        # which reopen handles); this leaves it *live* on a dead loop.
        loop = asyncio.new_event_loop()
        try:
            result = loop.run_until_complete(first())
        finally:
            loop.close()
        assert result[1] == frozenset([1, 2])
        assert not gateway._batcher.done()  # still bound to the dead loop
        try:
            asyncio.run(asyncio.wait_for(second(), timeout=60))
        finally:
            # The misused gateway's batcher is forever pending on its dead
            # loop and cannot be cancelled or closed from here; keep the
            # object alive for the session so its GC-time unraisable
            # warning is not attributed to some arbitrary later test.
            _CROSS_LOOP_ORPHANS.append(gateway)

    def test_reuse_after_cancelling_run_recovers(self):
        """asyncio.run cancels pending tasks at teardown; the next run on
        a fresh loop must rebuild via the crashed-batcher path."""
        service = StubService()
        gateway = AsyncGateway(service, max_batch=4, max_wait_ms=1.0)

        async def solve_once(query):
            return await gateway.asolve(query)

        first = asyncio.run(asyncio.wait_for(solve_once([1, 2]), timeout=60))
        second = asyncio.run(asyncio.wait_for(solve_once([3, 4]), timeout=60))
        assert first[1] == frozenset([1, 2])
        assert second[1] == frozenset([3, 4])

    def test_gateway_level_default_options(self):
        service = StubService()
        defaults = SolveOptions(beta=3.0)

        async def scenario():
            async with AsyncGateway(
                service, defaults, max_batch=4, max_wait_ms=1.0
            ) as gateway:
                return await gateway.asolve([1, 2])

        result = run(scenario())
        assert result[2] == defaults  # the stub echoes the options it saw

    def test_constructor_validation(self):
        service = StubService()
        with pytest.raises(ValueError):
            AsyncGateway(service, max_batch=0)
        with pytest.raises(ValueError):
            AsyncGateway(service, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            AsyncGateway(service, max_queue=0)
        with pytest.raises(ValueError):
            AsyncGateway(service, max_pending_windows=0)

        async def bad_options():
            gateway = AsyncGateway(service)
            with pytest.raises(TypeError):
                await gateway.asolve([1], options={"beta": 1.0})
            # Validation happens before the machinery spins up: a failed
            # admission must not leave a batcher task/executor running
            # with nobody responsible for closing them.
            assert gateway._batcher is None and gateway._executor is None

        run(bad_options())

    def test_stats_snapshot_shape(self):
        stats = GatewayStats(
            queued=0,
            in_flight=0,
            admitted=0,
            coalesced=0,
            shed=0,
            windows_dispatched=0,
            window_sizes=(),
            window_size_sum=0,
            results_served=0,
            failures=0,
        )
        assert stats.mean_window_size == 0.0
