"""Tests for the weighted-graph extension of the algorithm."""

import math
import random

import pytest

from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.core.weighted import (
    brute_force_weighted,
    induced_weighted_subgraph,
    weighted_wiener_index,
    wiener_steiner_weighted,
)
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.generators import connectify, erdos_renyi
from repro.graphs.graph import Graph, WeightedGraph


def random_weighted(n: int, seed: int, weights=(1.0, 2.0, 3.0)) -> WeightedGraph:
    rng = random.Random(seed)
    plain = connectify(erdos_renyi(n, 0.25, rng=rng), rng=rng)
    weighted = WeightedGraph()
    for node in plain.nodes():
        weighted.add_node(node)
    for u, v in plain.edges():
        weighted.add_edge(u, v, rng.choice(weights))
    return weighted


class TestWeightedWiener:
    def test_unit_weights_match_unweighted(self):
        from repro.graphs.wiener import wiener_index

        g = random_weighted(15, 1, weights=(1.0,))
        plain = g.unweighted()
        assert weighted_wiener_index(g) == wiener_index(plain)

    def test_triangle_with_heavy_edge(self):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        # d(0,1)=1, d(1,2)=1, d(0,2)=2 via vertex 1.
        assert weighted_wiener_index(g) == 4.0

    def test_disconnected_infinite(self):
        g = WeightedGraph([(0, 1, 1.0)])
        g.add_node(2)
        assert weighted_wiener_index(g) == math.inf

    def test_tiny(self):
        assert weighted_wiener_index(WeightedGraph()) == 0.0


class TestInducedSubgraph:
    def test_carries_weights(self):
        g = WeightedGraph([(0, 1, 2.5), (1, 2, 1.0)])
        sub = induced_weighted_subgraph(g, [0, 1])
        assert sub.num_edges == 1
        assert sub.weight(0, 1) == 2.5


class TestWienerSteinerWeighted:
    def test_contract(self):
        g = random_weighted(25, 2)
        query = sorted(g.nodes())[:4]
        result = wiener_steiner_weighted(g, query)
        assert set(query) <= set(result.nodes)
        assert result.wiener_index() < math.inf

    def test_single_vertex(self):
        g = random_weighted(10, 3)
        only = next(iter(g.nodes()))
        result = wiener_steiner_weighted(g, [only])
        assert result.nodes == frozenset([only])

    def test_empty_query_raises(self):
        with pytest.raises(InvalidQueryError):
            wiener_steiner_weighted(random_weighted(8, 4), [])

    def test_unknown_vertex_raises(self):
        with pytest.raises(InvalidQueryError):
            wiener_steiner_weighted(random_weighted(8, 5), [999])

    def test_disconnected_raises(self):
        g = WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            wiener_steiner_weighted(g, [0, 3])

    @pytest.mark.parametrize("seed", range(5))
    def test_close_to_weighted_optimum(self, seed):
        g = random_weighted(12, seed + 100)
        rng = random.Random(seed)
        query = rng.sample(sorted(g.nodes()), 3)
        optimum = brute_force_weighted(g, query, max_candidates=12)
        approx = wiener_steiner_weighted(g, query)
        opt_value = optimum.metadata["optimum"]
        assert opt_value <= approx.wiener_index() + 1e-9
        assert approx.wiener_index() <= 3 * opt_value + 1e-9

    def test_unit_weights_agree_with_unweighted_pipeline(self):
        g = random_weighted(20, 6, weights=(1.0,))
        plain = g.unweighted()
        query = sorted(g.nodes())[:4]
        weighted_result = wiener_steiner_weighted(g, query)
        plain_result = wiener_steiner(plain, query, selection="wiener")
        # Same algorithm family; objectives should match closely (the λ
        # grids differ slightly, so allow the better of the two to win).
        assert weighted_result.wiener_index() <= plain_result.wiener_index * 1.5 + 1e-9

    def test_heavy_shortcut_avoided(self):
        # Path 0-1-2 (weight 1 each) vs direct edge 0-2 of weight 10:
        # the connector for {0, 2} should include vertex 1.
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        result = wiener_steiner_weighted(g, [0, 2])
        assert 1 in result.nodes


class TestBruteForceWeighted:
    def test_pool_guard(self):
        g = random_weighted(25, 7)
        with pytest.raises(InvalidQueryError):
            brute_force_weighted(g, sorted(g.nodes())[:2], max_candidates=5)

    def test_known_instance(self):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        result = brute_force_weighted(g, [0, 2])
        assert result.nodes == frozenset([0, 1, 2])
