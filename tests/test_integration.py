"""End-to-end integration tests across module boundaries.

Each test exercises a realistic pipeline the way a downstream user would:
dataset → workload → algorithm → characterization → report.
"""

import random

import pytest

from repro import minimum_wiener_connector
from repro.baselines import METHODS
from repro.core import parallel_wiener_steiner, wiener_steiner
from repro.core.exact import brute_force
from repro.datasets import karate_club, load_community_dataset, load_dataset, puc_like
from repro.experiments.reporting import render_table
from repro.experiments.stats import characterize, host_betweenness
from repro.graphs import wiener_index
from repro.graphs.components import nodes_connect
from repro.solvers import flow_lp_lower_bound, solve_exact
from repro.workloads import (
    average_pairwise_distance,
    different_communities_query,
    query_with_distance,
)


class TestFullPipelines:
    def test_dataset_to_report(self):
        """dataset → distance-controlled workload → all methods → table."""
        graph = load_dataset("football")
        rng = random.Random(0)
        query = query_with_distance(graph, 5, 2.5, rng=rng)
        centrality = host_betweenness(graph)
        rows = []
        for tag, method in METHODS.items():
            stats = characterize(method(graph, query), centrality)
            rows.append((tag, stats.size, f"{stats.density:.3f}"))
        text = render_table(("method", "size", "density"), rows)
        assert "ws-q" in text

    def test_certified_pipeline(self):
        """ws-q → warm-started exact solver → LP cross-check."""
        graph = karate_club()
        query = [12, 25, 26, 30]
        approx = minimum_wiener_connector(graph, query)
        outcome = solve_exact(graph, query, initial=approx)
        assert outcome.optimal
        assert outcome.upper_bound <= approx.wiener_index
        lp = flow_lp_lower_bound(graph, query)
        assert lp.value <= outcome.upper_bound + 1e-6

    def test_community_workload_pipeline(self):
        """ground-truth graph → dc query → method comparison."""
        data = load_community_dataset("dblp")
        rng = random.Random(1)
        query = different_communities_query(data, 4, rng)
        assert len(data.communities_of(query)) == 4
        ws = wiener_steiner(data.graph, query)
        assert nodes_connect(data.graph, ws.nodes)
        # The connector spans at least the query's communities.
        assert len(data.communities_of(ws.nodes)) >= 2

    def test_steinlib_pipeline(self, tmp_path):
        """generate .stp → write → read → solve both objectives."""
        from repro.baselines import steiner_connector
        from repro.graphs.io import read_stp, write_stp

        instance = puc_like(1)
        path = tmp_path / "inst.stp"
        write_stp(instance, path)
        loaded = read_stp(path)
        graph, terminals = loaded.unweighted()
        st = steiner_connector(graph, terminals)
        ws = wiener_steiner(graph, terminals)
        assert st.wiener_index >= ws.wiener_index * 0.9

    def test_parallel_matches_quality_on_dataset(self):
        graph = load_dataset("football")
        rng = random.Random(2)
        query = rng.sample(sorted(graph.nodes()), 4)
        sequential = wiener_steiner(graph, query, selection="wiener")
        parallel = parallel_wiener_steiner(graph, query, max_workers=2)
        assert parallel.wiener_index == sequential.wiener_index

    def test_exact_chain_consistency(self):
        """brute force == branch and bound == ws-q upper bound ordering."""
        rng = random.Random(3)
        from repro.graphs.generators import connectify, erdos_renyi

        graph = connectify(erdos_renyi(13, 0.3, rng=rng), rng=rng)
        query = rng.sample(sorted(graph.nodes()), 4)
        exact = brute_force(graph, query, max_candidates=13)
        bnb = solve_exact(graph, query)
        approx = wiener_steiner(graph, query)
        assert bnb.upper_bound == exact.wiener_index
        assert exact.wiener_index <= approx.wiener_index

    def test_workload_distance_control_on_dataset(self):
        graph = load_dataset("celegans")
        rng = random.Random(4)
        query = query_with_distance(graph, 6, 3.0, rng=rng)
        achieved = average_pairwise_distance(graph, query)
        assert achieved == pytest.approx(3.0, abs=1.0)

    def test_public_api_surface(self):
        """Everything advertised in repro.__all__ is importable."""
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_karate_wiener_sanity(self):
        graph = karate_club()
        # Known value range for the karate club's Wiener index.
        value = wiener_index(graph)
        assert 1100 < value < 1600
