"""Tests for BFS/Dijkstra traversals, cross-checked against networkx."""

import pytest

from helpers import random_connected_graph, to_networkx
from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph, WeightedGraph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_limited,
    bfs_tree,
    dijkstra,
    eccentricity,
    multi_source_bfs,
    multi_source_dijkstra,
    shortest_path,
)


class TestBFS:
    def test_path_distances(self, path5):
        assert bfs_distances(path5, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_absent(self):
        g = Graph([(0, 1)], nodes=[2])
        distances = bfs_distances(g, 0)
        assert 2 not in distances

    def test_missing_source_raises(self, path5):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(path5, 99)

    def test_bfs_tree_parents_consistent(self, two_triangles_bridge):
        distances, parents = bfs_tree(two_triangles_bridge, 0)
        for node, parent in parents.items():
            assert distances[node] == distances[parent] + 1

    def test_bfs_limited(self, path5):
        assert bfs_limited(path5, 0, 2) == {0: 0, 1: 1, 2: 2}

    def test_bfs_limited_zero(self, path5):
        assert bfs_limited(path5, 3, 0) == {3: 0}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = random_connected_graph(60, 0.08, seed)
        oracle = to_networkx(g)
        source = next(iter(g.nodes()))
        expected = nx.single_source_shortest_path_length(oracle, source)
        assert bfs_distances(g, source) == dict(expected)


class TestMultiSourceBFS:
    def test_voronoi_partition(self, path5):
        distances, closest = multi_source_bfs(path5, [0, 4])
        assert distances == {0: 0, 4: 0, 1: 1, 3: 1, 2: 2}
        assert closest[1] == 0
        assert closest[3] == 4

    def test_duplicate_sources_ok(self, path5):
        distances, _ = multi_source_bfs(path5, [0, 0])
        assert distances[4] == 4

    def test_missing_source_raises(self, path5):
        with pytest.raises(NodeNotFoundError):
            multi_source_bfs(path5, [99])


class TestShortestPath:
    def test_simple(self, path5):
        assert shortest_path(path5, 0, 3) == [0, 1, 2, 3]

    def test_same_node(self, path5):
        assert shortest_path(path5, 2, 2) == [2]

    def test_unreachable_none(self):
        g = Graph([(0, 1)], nodes=[2])
        assert shortest_path(g, 0, 2) is None

    def test_path_is_shortest(self):
        for seed in range(3):
            g = random_connected_graph(50, 0.1, seed + 100)
            nodes = sorted(g.nodes())
            path = shortest_path(g, nodes[0], nodes[-1])
            assert path is not None
            assert len(path) - 1 == bfs_distances(g, nodes[0])[nodes[-1]]
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)


class TestDijkstra:
    def test_weighted_path(self):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        distances, parents = dijkstra(g, 0)
        assert distances == {0: 0.0, 1: 1.0, 2: 2.0}
        assert parents[2] == 1

    def test_prefers_direct_when_cheaper(self):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.5)])
        distances, _ = dijkstra(g, 0)
        assert distances[2] == 1.5

    def test_matches_networkx(self):
        import networkx as nx
        import random

        rng = random.Random(7)
        g = WeightedGraph()
        for _ in range(120):
            u, v = rng.sample(range(30), 2)
            g.add_edge(u, v, rng.uniform(0.1, 5.0))
        oracle = nx.Graph()
        for u, v, w in g.edges():
            oracle.add_edge(u, v, weight=w)
        source = next(iter(g.nodes()))
        expected = nx.single_source_dijkstra_path_length(oracle, source)
        actual, _ = dijkstra(g, source)
        assert set(actual) == set(expected)
        for node in expected:
            assert actual[node] == pytest.approx(expected[node])

    def test_mixed_node_types_no_comparison_error(self):
        g = WeightedGraph([(0, "a", 1.0), ("a", 1, 1.0), (0, 1, 5.0)])
        distances, _ = dijkstra(g, 0)
        assert distances[1] == 2.0


class TestMultiSourceDijkstra:
    def test_closest_assignment(self):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        distances, parents, closest = multi_source_dijkstra(g, [0, 4])
        assert closest[1] == 0
        assert closest[3] == 4
        assert distances[2] == 2.0
        # Parent chains lead back to the assigned source.
        node = 1
        while node in parents:
            node = parents[node]
        assert node == 0

    def test_missing_source_raises(self):
        with pytest.raises(NodeNotFoundError):
            multi_source_dijkstra(WeightedGraph([(0, 1, 1.0)]), [9])


class TestEccentricity:
    def test_path_ends(self, path5):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2
