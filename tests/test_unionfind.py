"""Tests (incl. property-based) for the disjoint-set forest."""

import random

from hypothesis import given, strategies as st

from repro.graphs.unionfind import UnionFind


class TestUnionFindBasics:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.num_sets == 3
        assert not uf.connected(1, 2)

    def test_union_reduces_sets(self):
        uf = UnionFind([1, 2, 3])
        assert uf.union(1, 2)
        assert uf.num_sets == 2
        assert uf.connected(1, 2)

    def test_union_idempotent(self):
        uf = UnionFind()
        assert uf.union("a", "b")
        assert not uf.union("a", "b")
        assert uf.num_sets == 1

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf
        assert len(uf) == 1

    def test_transitive(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)

    def test_sets_materialization(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        partition = sorted(sorted(s) for s in uf.sets())
        assert partition == [[0, 1], [2], [3]]


class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=80))
    def test_matches_naive_partition(self, unions):
        """UF connectivity must equal a naive set-merging implementation."""
        uf = UnionFind()
        naive: list[set[int]] = [{i} for i in range(31)]

        def naive_find(x: int) -> set[int]:
            for group in naive:
                if x in group:
                    return group
            raise AssertionError

        for a, b in unions:
            uf.union(a, b)
            ga, gb = naive_find(a), naive_find(b)
            if ga is not gb:
                ga |= gb
                naive.remove(gb)
        for a in range(31):
            for b in range(a + 1, 31):
                assert uf.connected(a, b) == (naive_find(a) is naive_find(b))

    @given(st.integers(2, 200), st.integers(0, 10_000))
    def test_num_sets_invariant(self, n, seed):
        """num_sets = elements - successful unions, always."""
        rng = random.Random(seed)
        uf = UnionFind(range(n))
        successes = 0
        for _ in range(n * 2):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b and uf.union(a, b):
                successes += 1
        assert uf.num_sets == n - successes
