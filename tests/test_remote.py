"""Property/fuzz tests for the remote shard transport.

The contract under test is the same identity contract
``tests/test_sharded.py`` pins for pipe-backed shards, now over sockets:
a :class:`ShardedConnectorService` routing across ``repro shard-host``
daemons — all-remote or mixed with local pipe shards — returns
*bit-identical* connectors to the one-shot ``wiener_steiner`` and to a
single in-process :class:`ConnectorService`, cold and warm.  Alongside
it: the connect-time graph-digest handshake, the wire protocol's
error paths, failure semantics when a shard host is killed mid-stream,
and the ``repro shard-host`` CLI as a real subprocess.
"""

import os
import random
import re
import socket
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from helpers import (
    assert_connector_identical,
    assert_no_orphan_processes,
    random_connected_graph,
    random_query_batch,
    spawn_shard_host,
)
from repro.core.options import SolveOptions
from repro.core.service import ConnectorService
from repro.core.sharded import (
    ShardTransportError,
    ShardedConnectorService,
    normalize_shard_spec,
)
from repro.core.wiener_steiner import wiener_steiner
from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph
from repro.serving.protocol import decode_line, encode_line, encode_pickled
from repro.serving.remote import (
    RemoteShardTransport,
    ShardHostServer,
    shutdown_shard_host,
)


@contextmanager
def shard_hosts(graph, count: int):
    """``count`` in-process shard-host daemons over replicas of ``graph``."""
    hosts = [ShardHostServer(ConnectorService(graph)).start() for _ in range(count)]
    try:
        yield [f"127.0.0.1:{host.port}" for host in hosts]
    finally:
        for host in hosts:
            host.close()


def raw_request(port: int, *lines: bytes, reply_count: int | None = None):
    """Send raw lines to a shard host and collect one reply per line."""
    expected = reply_count if reply_count is not None else len(lines)
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        for line in lines:
            sock.sendall(line)
        handle = sock.makefile("rb")
        return [decode_line(handle.readline()) for _ in range(expected)]


class TestShardSpecs:
    def test_normalize_accepts_local_and_host_port(self):
        assert normalize_shard_spec("local") == "local"
        assert normalize_shard_spec(" 10.0.0.5:8766 ") == ("10.0.0.5", 8766)

    @pytest.mark.parametrize("bad", [
        "", "   ", 7, None, "justahost", ":8766", "host:", "host:abc",
        "host:0", "host:70000",
    ])
    def test_normalize_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            normalize_shard_spec(bad)

    def test_constructor_rejects_spec_count_conflict_and_empty(self):
        g = random_connected_graph(12, 0.3, 1)
        with pytest.raises(ValueError, match="not both"):
            ShardedConnectorService(g, n_shards=2, shards=["local"])
        with pytest.raises(ValueError, match="at least one"):
            ShardedConnectorService(g, shards=[])
        assert_no_orphan_processes()


class TestRemoteIdentity:
    @pytest.mark.parametrize("topology", ["remote", "mixed"])
    def test_fuzz_matches_one_shot_and_single_service(self, topology):
        """The headline fuzz, over sockets: random corpora × random
        batches, all-remote and mixed local+remote rings, checked against
        both references — cold and warm."""
        rng = random.Random(2026)
        for seed in range(2):
            g = random_connected_graph(rng.randint(26, 48), 0.1, seed + 91)
            batch = random_query_batch(g, rng, 4, lo=2, hi=5)
            batch.append(batch[0])  # an in-flight duplicate
            single = ConnectorService(g)
            with shard_hosts(g, 2) as addresses:
                specs = (
                    addresses if topology == "remote"
                    else [addresses[0], "local"]
                )
                with ShardedConnectorService(g, shards=specs) as sharded:
                    assert sharded.n_shards == 2
                    for round_name in ("cold", "warm"):
                        results = sharded.solve_many(batch)
                        references = single.solve_many(batch)
                        assert len(results) == len(batch)
                        for query, result, reference in zip(
                            batch, results, references
                        ):
                            assert_connector_identical(result, reference)
                            assert_connector_identical(
                                result, wiener_steiner(g, query)
                            )
                            assert result.metadata["sharded"] is True
                            assert result.metadata["shards"] == 2
                            expected_kinds = (
                                {"socket"} if topology == "remote"
                                else {"pipe", "socket"}
                            )
                            assert result.metadata["transport"] in expected_kinds
        assert_no_orphan_processes()

    def test_order_preserved_and_inflight_deduped_over_sockets(self):
        g = random_connected_graph(36, 0.1, 17)
        rng = random.Random(17)
        q1, q2, q3 = random_query_batch(g, rng, 3)
        batch = [q1, q2, q1, q3, q1]
        with shard_hosts(g, 2) as addresses:
            with ShardedConnectorService(g, shards=addresses) as sharded:
                results = sharded.solve_many(batch)
                assert [sorted(r.query) for r in results] == [
                    sorted(set(q)) for q in batch
                ]
                assert results[2] is results[0]
                assert results[4] is results[0]
                stats = sharded.stats()
                assert stats.requests_routed == 3
                assert stats.inflight_deduped == 2
                assert stats.transports == ("socket", "socket")

    def test_large_batch_interleaves_drain_with_scatter(self):
        """The socket path obeys the same in-flight cap as pipes: far more
        distinct keys than MAX_INFLIGHT_PER_SHARD, cold then warm, without
        deadlocking on either side's buffers."""
        n = 120
        g = Graph([(i, i + 1) for i in range(n - 1)])
        queries = [[i, i + 1] for i in range(n - 1)]
        with shard_hosts(g, 2) as addresses:
            with ShardedConnectorService(g, shards=addresses) as sharded:
                assert len(queries) > 3 * sharded.MAX_INFLIGHT_PER_SHARD
                cold = sharded.solve_many(queries)
                warm = sharded.solve_many(queries * 2)
        for query, result in zip(queries, cold):
            assert result.nodes == frozenset(query)
        assert [r.nodes for r in warm] == [r.nodes for r in cold] * 2

    def test_ring_placement_matches_local_ring(self):
        """Ring placement depends only on the slot count, never the
        transport, so a remote ring serves exactly the keys a pipe ring
        would — cache affinity survives a migration to sockets."""
        g = random_connected_graph(30, 0.12, 23)
        rng = random.Random(23)
        batch = random_query_batch(g, rng, 6)
        with shard_hosts(g, 2) as addresses:
            with ShardedConnectorService(g, shards=addresses) as remote, \
                    ShardedConnectorService(g, n_shards=2) as local:
                for query in batch:
                    assert remote.shard_of(query) == local.shard_of(query)

    def test_warm_reasks_hit_shard_host_caches(self):
        g = random_connected_graph(32, 0.1, 29)
        rng = random.Random(29)
        batch = random_query_batch(g, rng, 3)
        with shard_hosts(g, 2) as addresses:
            with ShardedConnectorService(g, shards=addresses) as sharded:
                sharded.solve_many(batch)
                sharded.solve_many(batch)
                stats = sharded.stats()
                assert stats.result_hits == len(batch)

    def test_resize_grows_remote_ring_with_local_shards(self):
        g = random_connected_graph(30, 0.12, 31)
        rng = random.Random(31)
        batch = random_query_batch(g, rng, 3)
        with shard_hosts(g, 1) as addresses:
            with ShardedConnectorService(g, shards=addresses) as sharded:
                before = sharded.solve_many(batch)
                sharded.resize(3)
                assert sharded.transports == ("socket", "pipe", "pipe")
                after = sharded.solve_many(batch)
                for result, reference in zip(after, before):
                    assert_connector_identical(result, reference)
                sharded.resize(1)
                assert sharded.transports == ("socket",)
                final = sharded.solve_many(batch)
                for result, reference in zip(final, before):
                    assert_connector_identical(result, reference)
        assert_no_orphan_processes()

    def test_request_fault_fails_request_not_shard_host(self):
        """A query spanning components blows up inside the daemon's sweep;
        the original exception type crosses the wire and the host keeps
        serving the next batch."""
        g = Graph([(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)])
        with shard_hosts(g, 2) as addresses:
            with ShardedConnectorService(g, shards=addresses) as sharded:
                with pytest.raises(DisconnectedGraphError):
                    sharded.solve_many([[0, 3], [0, 11]])
                [result] = sharded.solve_many([[0, 3]])
                assert_connector_identical(result, wiener_steiner(g, [0, 3]))


class TestHandshake:
    def test_digest_mismatch_is_refused_before_any_routing(self):
        g = random_connected_graph(24, 0.15, 37)
        other = random_connected_graph(25, 0.15, 38)
        with shard_hosts(g, 1) as addresses:
            with pytest.raises(RuntimeError, match="digest mismatch"):
                ShardedConnectorService(other, shards=addresses)
            # the refused router spawned nothing and the host still serves
            with ShardedConnectorService(g, shards=addresses) as sharded:
                [result] = sharded.solve_many([sorted(g.nodes())[:3]])
                assert_connector_identical(
                    result, wiener_steiner(g, sorted(g.nodes())[:3])
                )
        assert_no_orphan_processes()

    def test_mismatch_mid_build_reaps_earlier_shards(self):
        """A refused handshake on shard 2 must not leak the local worker
        already spawned for shard 1."""
        g = random_connected_graph(24, 0.15, 41)
        other = random_connected_graph(26, 0.15, 42)
        with shard_hosts(other, 1) as addresses:
            with pytest.raises(RuntimeError, match="digest mismatch"):
                ShardedConnectorService(g, shards=["local", addresses[0]])
        assert_no_orphan_processes()

    def test_unreachable_host_fails_topology_build(self):
        g = random_connected_graph(16, 0.25, 43)
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))  # bound but never listening
        port = blocker.getsockname()[1]
        try:
            blocker.close()  # freed: connecting now gets ECONNREFUSED
            with pytest.raises(ShardTransportError, match="cannot connect"):
                ShardedConnectorService(g, shards=[f"127.0.0.1:{port}"])
        finally:
            pass
        assert_no_orphan_processes()

    def test_non_protocol_peer_fails_topology_build_cleanly(self):
        """Pointing --shards at something that is not a shard host (an
        HTTP server, say) is a broken-link topology error the CLI can
        report — never a raw JSON traceback."""
        import threading

        g = random_connected_graph(16, 0.25, 44)
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        listener.settimeout(10)

        def http_peer():
            conn, _ = listener.accept()
            conn.recv(1 << 16)
            conn.sendall(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            conn.close()

        thread = threading.Thread(target=http_peer, daemon=True)
        thread.start()
        try:
            with pytest.raises(ShardTransportError, match="non-protocol"):
                ShardedConnectorService(g, shards=[f"127.0.0.1:{port}"])
            thread.join(timeout=10)
        finally:
            listener.close()
        assert_no_orphan_processes()

    def test_index_digest_is_content_stable(self):
        g = random_connected_graph(30, 0.12, 47)
        twin = Graph(sorted(g.edges(), reverse=True))
        assert (
            ConnectorService(g).index_digest()
            == ConnectorService(twin).index_digest()
        )
        different = random_connected_graph(30, 0.12, 48)
        assert (
            ConnectorService(g).index_digest()
            != ConnectorService(different).index_digest()
        )


class TestShardHostProtocol:
    """The shard host's wire-level behavior over a live socket."""

    def test_ping_stats_and_unknown_op(self):
        g = random_connected_graph(20, 0.2, 53)
        with ShardHostServer(ConnectorService(g)) as host:
            pong, stats, unknown = raw_request(
                host.port,
                encode_line({"op": "ping", "id": 1}),
                encode_line({"op": "stats", "id": 2}),
                encode_line({"op": "explode", "id": 3}),
            )
            assert pong == {"ok": True, "pong": True, "id": 1}
            assert stats["ok"] is True and stats["id"] == 2
            assert stats["stats"]["queries_served"] == 0
            assert unknown["ok"] is False and unknown["id"] == 3
            assert "unknown op" in unknown["error"]

    def test_malformed_line_and_missing_id_keep_connection_alive(self):
        g = random_connected_graph(20, 0.2, 59)
        with ShardHostServer(ConnectorService(g)) as host:
            garbage, anonymous, pong = raw_request(
                host.port,
                b"not json at all\n",
                encode_line({"op": "ping"}),  # no id: echoed back as null
                encode_line({"op": "ping", "id": 9}),
            )
            assert garbage["ok"] is False
            assert garbage["id"] is None
            assert anonymous["ok"] is True and anonymous["id"] is None
            assert pong == {"ok": True, "pong": True, "id": 9}

    def test_sweep_requires_a_successful_hello(self):
        """The digest check is enforced server-side per connection: a
        sweep before (or after a *failed*) hello is refused, a sweep after
        a successful hello on the same connection is served — and a
        refused sweep never kills the link."""
        g = random_connected_graph(20, 0.2, 61)
        service = ConnectorService(g)
        digest = service.index_digest()
        sweep_line = encode_line({
            "op": "sweep", "id": 5,
            "request": encode_pickled(
                (tuple(sorted(g.nodes())[:3]), SolveOptions())
            ),
        })
        with ShardHostServer(service) as host:
            refused, pong = raw_request(
                host.port, sweep_line, encode_line({"op": "ping", "id": 6})
            )
            assert refused["ok"] is False and refused["id"] == 5
            assert "hello" in refused["error"]
            assert pong["ok"] is True  # the connection survives
            bad_hello, still_refused = raw_request(
                host.port,
                encode_line({"op": "hello", "digest": "bogus", "id": 1}),
                sweep_line,
            )
            assert bad_hello["ok"] is False
            assert still_refused["ok"] is False
            assert "hello" in still_refused["error"]
            hello, served = raw_request(
                host.port,
                encode_line({"op": "hello", "digest": digest, "id": 1}),
                sweep_line,
            )
            assert hello["ok"] is True
            assert served["ok"] is True and served["id"] == 5

    def test_bad_sweep_payload_fails_request_only(self):
        g = random_connected_graph(20, 0.2, 67)
        service = ConnectorService(g)
        with ShardHostServer(service) as host:
            hello, bad, pong = raw_request(
                host.port,
                encode_line({
                    "op": "hello", "digest": service.index_digest(), "id": 0,
                }),
                encode_line({"op": "sweep", "id": 1, "request": "@@not-b64@@"}),
                encode_line({"op": "ping", "id": 2}),
            )
            assert hello["ok"] is True
            assert bad["ok"] is False and bad["id"] == 1
            assert pong["ok"] is True

    def test_shutdown_helper_stops_host(self):
        g = random_connected_graph(16, 0.25, 71)
        host = ShardHostServer(ConnectorService(g)).start()
        port = host.port
        try:
            assert shutdown_shard_host("127.0.0.1", port) is True
            assert host.wait_shutdown(timeout=10)
        finally:
            host.close()
        assert shutdown_shard_host("127.0.0.1", port) is False  # already gone

    def test_shutdown_honored_even_if_peer_hangs_up(self):
        """An accepted shutdown must stop the daemon even when the ack
        cannot be delivered (the supervisor fired-and-forgot, or died
        right after asking) — same contract as the gateway server."""
        import struct

        g = random_connected_graph(16, 0.25, 77)
        host = ShardHostServer(ConnectorService(g)).start()
        try:
            sock = socket.create_connection(("127.0.0.1", host.port), timeout=10)
            sock.sendall(encode_line({"op": "shutdown", "id": 0}))
            # RST on close: the daemon's ack write fails instead of
            # draining into a closed-but-graceful socket.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            sock.close()
            assert host.wait_shutdown(timeout=10)
        finally:
            host.close()

    def test_transport_rejects_protocol_violations(self):
        """A peer that answers the handshake but then talks garbage is a
        broken link, not a crash: ShardTransportError."""
        g = random_connected_graph(16, 0.25, 73)
        digest = ConnectorService(g).index_digest()
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        try:
            listener.settimeout(10)

            import threading

            def fake_host():
                conn, _ = listener.accept()
                conn.recv(1 << 16)  # swallow the hello
                conn.sendall(encode_line({"ok": True, "digest": digest, "id": None}))
                conn.recv(1 << 16)  # swallow the sweep
                conn.sendall(b'{"id": 0, "ok": true}\n')  # no payload
                time.sleep(0.5)
                conn.close()

            thread = threading.Thread(target=fake_host, daemon=True)
            thread.start()
            transport = RemoteShardTransport(
                0, "127.0.0.1", port, digest=digest
            )
            transport.submit(0, (1, 2), SolveOptions())
            deadline = time.monotonic() + 10
            with pytest.raises(ShardTransportError, match="unparsable"):
                while time.monotonic() < deadline:
                    if transport.drain():  # pragma: no cover - never ok
                        break
                    time.sleep(0.01)
            transport.stop()
            thread.join(timeout=10)
        finally:
            listener.close()


class TestKilledShardHost:
    def test_killed_host_fails_batch_with_one_clean_error(self):
        """The acceptance path: a shard-host daemon killed mid-stream
        fails the batch with one clean RuntimeError, the sharded service
        closes, and nothing is orphaned."""
        from repro.datasets import load_dataset

        graph = load_dataset("football")
        rng = random.Random(79)
        victim, victim_port = spawn_shard_host("football")
        survivor, survivor_port = spawn_shard_host("football")
        sharded = None
        try:
            sharded = ShardedConnectorService(
                graph,
                shards=[
                    f"127.0.0.1:{victim_port}",
                    f"127.0.0.1:{survivor_port}",
                ],
            )
            results = sharded.solve_many(random_query_batch(graph, rng, 2))
            assert len(results) == 2
            victim.kill()
            victim.wait(timeout=10)
            with pytest.raises(RuntimeError, match="died|closed"):
                for _ in range(20):  # whichever shard a key routes to
                    sharded.solve_many(random_query_batch(graph, rng, 3))
            with pytest.raises(RuntimeError, match="closed"):
                sharded.solve(sorted(graph.nodes())[:2])
            assert sharded._closed
        finally:
            if sharded is not None:
                sharded.close()
            for process in (victim, survivor):
                if process.poll() is None:
                    process.kill()
                process.communicate()
        assert_no_orphan_processes()

    def test_shard_host_cli_round_trip_and_remote_shutdown(self):
        """`repro shard-host` end to end: serve a router, then exit 0 on
        the shutdown op with clean output."""
        from repro.datasets import load_dataset

        graph = load_dataset("football")
        process, port = spawn_shard_host("football")
        try:
            with ShardedConnectorService(
                graph, shards=[f"127.0.0.1:{port}"]
            ) as sharded:
                [result] = sharded.solve_many([[0, 1, 2]])
                assert_connector_identical(
                    result, wiener_steiner(graph, [0, 1, 2])
                )
            assert shutdown_shard_host("127.0.0.1", port) is True
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        assert stderr == ""
        assert "shutdown requested" in stdout
        assert "served 1 sweeps" in stdout
        assert_no_orphan_processes()


class TestServeComposition:
    def test_serve_fronts_remote_shard_host(self):
        """The whole tower: `repro serve` (AsyncGateway + TCP server) over
        `--shards host:port` — a gateway on one process fronting a shard
        replica in another, composed unchanged, identical answers, clean
        double shutdown."""
        import asyncio

        from repro.datasets import load_dataset
        from repro.serving.server import AsyncConnectorClient

        graph = load_dataset("football")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        host_proc, host_port = spawn_shard_host("football")
        serve_proc = None
        try:
            serve_proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "football",
                 "--port", "0", "--shards", f"127.0.0.1:{host_port}",
                 "--max-wait-ms", "1.0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            serve_port = None
            for line in serve_proc.stdout:
                match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
                if match:
                    serve_port = int(match.group(1))
                    break
            assert serve_port is not None, "repro serve never printed its port"

            async def drive():
                async with await AsyncConnectorClient.connect(
                    port=serve_port
                ) as client:
                    document = await client.solve([0, 1, 2])
                    await client.shutdown_server()
                    return document

            document = asyncio.run(asyncio.wait_for(drive(), timeout=60))
            stdout, stderr = serve_proc.communicate(timeout=30)
            assert serve_proc.returncode == 0, stderr
            assert stderr == ""
            reference = wiener_steiner(graph, [0, 1, 2])
            assert set(document["nodes"]) == set(reference.nodes)
            assert document["metadata"]["root"] == reference.metadata["root"]
            assert document["metadata"]["transport"] == "socket"

            assert shutdown_shard_host("127.0.0.1", host_port) is True
            host_out, host_err = host_proc.communicate(timeout=30)
            assert host_proc.returncode == 0, host_err
            assert "served 1 sweeps" in host_out
        finally:
            for process in (host_proc, serve_proc):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.communicate()
        assert_no_orphan_processes()


class TestShardHostCLIValidation:
    def test_bad_port_rejected(self, capsys):
        from repro.cli import main

        assert main(["shard-host", "football", "--port", "-1"]) == 2
        assert "--port" in capsys.readouterr().err

    def test_bind_failure_reported_cleanly(self, capsys):
        from repro.cli import main

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            assert main(["shard-host", "football", "--port", str(port)]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()
