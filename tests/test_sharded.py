"""Property/fuzz tests for the sharded serving layer.

The contract under test is the identity contract of
:mod:`repro.core.sharded`: for shard counts 1, 2 and 5, cold or warm,
under tiny LRU bounds, and across mid-stream :meth:`resize` calls, every
connector :class:`ShardedConnectorService` returns must be *bit-identical*
(same vertex set, same sweep trace) to the one-shot ``wiener_steiner`` and
to a single in-process :class:`ConnectorService` — the external identity
check that makes a distributed cache trustworthy.  Alongside it: the
consistent-hash ring's stability/movement properties and the
:class:`SolveOptions` stable-key layer the router hashes on.
"""

import dataclasses
import pickle
import random

import pytest

from helpers import (
    assert_connector_identical,
    assert_no_orphan_processes,
    random_connected_graph,
    random_query_batch,
)
from repro.baselines import METHODS
from repro.core.options import SolveOptions
from repro.core.service import ConnectorService
from repro.core.sharded import (
    ShardedConnectorService,
    _HashRing,
    request_digest,
)
from repro.core.wiener_steiner import wiener_steiner
from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.graphs.csr import HAS_NUMPY
from repro.graphs.graph import Graph

SHARD_COUNTS = (1, 2, 5)


class TestHashRing:
    def test_lookup_is_deterministic_across_instances(self):
        ring_a = _HashRing(range(4))
        ring_b = _HashRing(range(4))
        options = SolveOptions()
        for seed in range(50):
            digest = request_digest(frozenset([seed, seed + 1]), options)
            assert ring_a.lookup(digest) == ring_b.lookup(digest)

    def test_every_shard_owns_keys(self):
        ring = _HashRing(range(5))
        options = SolveOptions()
        owners = {
            ring.lookup(request_digest(frozenset([i, i + 1, i + 2]), options))
            for i in range(200)
        }
        assert owners == set(range(5))

    def test_growing_moves_about_one_nth_of_the_keys(self):
        """The consistent-hashing property resize() relies on: adding one
        shard to four reassigns roughly 1/5 of the key space, not all of it."""
        small, grown = _HashRing(range(4)), _HashRing(range(5))
        options = SolveOptions()
        digests = [
            request_digest(frozenset([i, i * 7 + 1]), options)
            for i in range(400)
        ]
        moved = sum(
            1 for d in digests if small.lookup(d) != grown.lookup(d)
        )
        assert moved > 0  # the new shard takes ownership of something
        assert moved < len(digests) / 2  # ...but nowhere near a full reshuffle
        # and every key that moved, moved *to* the new shard
        for d in digests:
            if small.lookup(d) != grown.lookup(d):
                assert grown.lookup(d) == 4

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            _HashRing([])


class TestShardedIdentity:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_fuzz_matches_one_shot_and_single_service(self, n_shards):
        """The headline fuzz: random corpora × random batches × shard counts,
        checked against both references."""
        rng = random.Random(1000 + n_shards)
        for seed in range(3):
            g = random_connected_graph(rng.randint(26, 56), 0.1, seed + 77)
            batch = random_query_batch(g, rng, 4, lo=2, hi=5)
            batch.append(batch[0])  # an in-flight duplicate
            single = ConnectorService(g)
            with ShardedConnectorService(g, n_shards=n_shards) as sharded:
                results = sharded.solve_many(batch)
                references = single.solve_many(batch)
                assert len(results) == len(batch)
                for query, result, reference in zip(batch, results, references):
                    assert_connector_identical(result, reference)
                    assert_connector_identical(result, wiener_steiner(g, query))
                    assert result.metadata["sharded"] is True
                    assert result.metadata["shards"] == n_shards
                    assert 0 <= result.metadata["shard"] < n_shards
        assert_no_orphan_processes()

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_warm_reask_is_identical_and_hits_shard_caches(self, n_shards):
        g = random_connected_graph(40, 0.09, 11)
        rng = random.Random(11)
        batch = random_query_batch(g, rng, 3)
        with ShardedConnectorService(g, n_shards=n_shards) as sharded:
            cold = sharded.solve_many(batch)
            warm = sharded.solve_many(batch)
            for a, b in zip(cold, warm):
                assert_connector_identical(a, b)
            stats = sharded.stats()
            # every warm request was answered from a shard's sweep cache
            assert stats.result_hits == len(batch)

    def test_identical_under_tiny_lru_bounds(self):
        """Tiny per-shard LRU bounds force constant eviction on every cache
        layer; answers must never change."""
        g = random_connected_graph(36, 0.1, 13)
        rng = random.Random(13)
        batch = random_query_batch(g, rng, 3)
        with ShardedConnectorService(
            g,
            n_shards=2,
            max_cached_roots=1,
            max_cached_candidates=2,
            max_cached_scores=2,
            max_cached_results=1,
        ) as sharded:
            for _ in range(2):  # interleave so every layer churns
                for query in batch:
                    assert_connector_identical(
                        sharded.solve(query), wiener_steiner(g, query)
                    )
            stats = sharded.stats()
            for shard_stats in stats.shards:
                assert shard_stats.result_cache_size <= 1
                assert shard_stats.candidate_cache_size <= 2
                assert shard_stats.score_cache_size <= 2
                assert shard_stats.cached_roots <= 1

    @pytest.mark.parametrize("path", [(2, 5), (5, 2), (2, 1), (1, 5)])
    def test_identical_across_midstream_resize(self, path):
        """Rebalancing between batches must be invisible in the answers:
        warm keys that stayed, warm keys that moved (now cold on their new
        shard), and brand-new keys all solve bit-identically."""
        start, end = path
        g = random_connected_graph(44, 0.09, 17)
        rng = random.Random(17)
        old_batch = random_query_batch(g, rng, 3)
        new_batch = random_query_batch(g, rng, 2)
        with ShardedConnectorService(g, n_shards=start) as sharded:
            before = sharded.solve_many(old_batch)
            sharded.resize(end)
            assert sharded.n_shards == end
            after = sharded.solve_many(old_batch + new_batch)
            for result, reference in zip(after, before):
                assert_connector_identical(result, reference)
            for query, result in zip(new_batch, after[len(old_batch):]):
                assert_connector_identical(result, wiener_steiner(g, query))
        assert_no_orphan_processes()

    def test_resize_noop_and_validation(self):
        g = random_connected_graph(24, 0.15, 19)
        with ShardedConnectorService(g, n_shards=2) as sharded:
            sharded.resize(2)
            assert sharded.n_shards == 2
            with pytest.raises(ValueError):
                sharded.resize(0)

    def test_resize_to_current_count_is_a_true_noop(self):
        """Same-count resize must not rebuild the ring or touch the
        transports — a supervisor reasserting its topology on a timer
        should never cost ring churn (or anything else)."""
        g = random_connected_graph(24, 0.15, 71)
        with ShardedConnectorService(g, n_shards=2) as sharded:
            ring_before = sharded._ring
            transports_before = dict(sharded._shards)
            processes_before = {
                shard_id: transport.process.pid
                for shard_id, transport in sharded._shards.items()
            }
            sharded.resize(2)
            assert sharded._ring is ring_before
            assert sharded._shards == transports_before
            assert {
                shard_id: transport.process.pid
                for shard_id, transport in sharded._shards.items()
            } == processes_before

    def test_closed_service_raises_one_message_everywhere(self):
        """resize and shard_of on a closed service must raise exactly the
        RuntimeError the solve paths raise — a supervisor matching on the
        message sees one failure mode, not three."""
        g = random_connected_graph(20, 0.2, 73)
        sharded = ShardedConnectorService(g, n_shards=2)
        sharded.close()
        messages = set()
        for call in (
            lambda: sharded.solve([0, 1]),
            lambda: sharded.solve_many([[0, 1]]),
            lambda: sharded.stats(),
            lambda: sharded.resize(3),
            lambda: sharded.shard_of([0, 1]),
        ):
            with pytest.raises(RuntimeError) as excinfo:
                call()
            messages.add(str(excinfo.value))
        assert messages == {"service is closed"}
        assert_no_orphan_processes()


class TestRouter:
    def test_order_preserved_and_inflight_deduped(self):
        g = random_connected_graph(40, 0.09, 23)
        rng = random.Random(23)
        q1, q2, q3 = random_query_batch(g, rng, 3)
        batch = [q1, q2, q1, q3, q1]
        with ShardedConnectorService(g, n_shards=2) as sharded:
            results = sharded.solve_many(batch)
            assert [sorted(r.query) for r in results] == [
                sorted(set(q)) for q in batch
            ]
            # duplicates were sent once and share one result object
            assert results[2] is results[0]
            assert results[4] is results[0]
            stats = sharded.stats()
            assert stats.requests_routed == 3
            assert stats.inflight_deduped == 2
            assert stats.queries_served == 3

    def test_large_batches_interleave_drain_with_scatter(self):
        """Regression: the router must never have more than
        ``MAX_INFLIGHT_PER_SHARD`` requests outstanding per shard — a
        scatter-everything-then-gather router deadlocks once a batch's
        requests and replies outgrow the OS pipe buffers (reproduced at
        ~700+ in-flight requests).  This drives the mid-scatter drain path
        hard — far more distinct keys than the cap, cold then warm — and
        checks order and identity still hold."""
        n = 150
        g = Graph([(i, i + 1) for i in range(n - 1)])
        queries = [[i, i + 1] for i in range(n - 1)]
        with ShardedConnectorService(g, n_shards=2) as sharded:
            assert len(queries) > 4 * sharded.MAX_INFLIGHT_PER_SHARD
            cold = sharded.solve_many(queries)
            warm = sharded.solve_many(queries * 3)
        for query, result in zip(queries, cold):
            assert result.nodes == frozenset(query)  # adjacent pairs solve to themselves
        assert [r.nodes for r in warm] == [r.nodes for r in cold] * 3

    def test_routing_is_deterministic_and_option_sensitive(self):
        g = random_connected_graph(30, 0.12, 29)
        query = sorted(g.nodes())[:4]
        with ShardedConnectorService(g, n_shards=5) as a, \
                ShardedConnectorService(g, n_shards=5) as b:
            assert a.shard_of(query) == b.shard_of(query)
            assert a.shard_of(query) == a.shard_of(query)
            # the options value is part of the key
            digests = {
                request_digest(frozenset(query), SolveOptions()),
                request_digest(frozenset(query), SolveOptions(beta=0.5)),
                request_digest(frozenset([query[0]]), SolveOptions()),
            }
            assert len(digests) == 3

    @pytest.mark.skipif(not HAS_NUMPY, reason="CSR payload needs numpy")
    def test_shards_seeded_with_bare_arrays_not_graphs(self):
        g = random_connected_graph(40, 0.1, 31)
        with ShardedConnectorService(
            g, SolveOptions(backend="csr"), n_shards=2
        ) as sharded:
            assert sharded.payload_kind == "csr"
            assert "graph" not in sharded._payload
            [result] = sharded.solve_many([sorted(g.nodes())[:3]])
            assert_connector_identical(
                result, wiener_steiner(g, sorted(g.nodes())[:3], backend="csr")
            )

    @pytest.mark.skipif(not HAS_NUMPY, reason="CSR payload needs numpy")
    def test_dict_backend_override_served_locally_on_csr_shards(self):
        """Per-call options remain fully overridable: a backend="dict"
        request needs the host graph, which CSR-seeded shard replicas do
        not have, so the router's local service answers it — identically."""
        g = random_connected_graph(36, 0.1, 67)
        rng = random.Random(67)
        query = rng.sample(sorted(g.nodes()), 4)
        with ShardedConnectorService(
            g, SolveOptions(backend="csr"), n_shards=2
        ) as sharded:
            result = sharded.solve(query, SolveOptions(backend="dict"))
            assert_connector_identical(
                result, wiener_steiner(g, query, backend="dict")
            )
            assert result.metadata["backend"] == "dict"
            assert sharded.stats().requests_routed == 0  # never hit a shard

    def test_worker_fault_fails_request_not_shard(self):
        """A query spanning components passes membership validation but
        blows up inside the shard's sweep; the error must propagate to the
        caller while the shard survives for the next batch."""
        g = Graph([(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)])
        with ShardedConnectorService(g, n_shards=2) as sharded:
            with pytest.raises(DisconnectedGraphError):
                sharded.solve_many([[0, 3], [0, 11]])
            # every pipe is drained and every shard still serves
            [result] = sharded.solve_many([[0, 3]])
            assert_connector_identical(result, wiener_steiner(g, [0, 3]))

    def test_dead_shard_closes_the_service_with_a_clear_error(self):
        """A shard process dying (OOM kill, crash) poisons any half-served
        batch, so the router must fail with one clear error and close the
        whole service — never limp on with stale replies in the pipes."""
        g = random_connected_graph(30, 0.12, 61)
        rng = random.Random(61)
        sharded = ShardedConnectorService(g, n_shards=2)
        try:
            sharded.solve_many(random_query_batch(g, rng, 2))
            victim = sharded._shards[0].process
            victim.terminate()
            victim.join(5.0)
            with pytest.raises(RuntimeError, match="died|closed"):
                for _ in range(20):  # whichever shard a key routes to
                    sharded.solve_many(random_query_batch(g, rng, 3))
            with pytest.raises(RuntimeError, match="closed"):
                sharded.solve([sorted(g.nodes())[0], sorted(g.nodes())[1]])
        finally:
            sharded.close()
        assert_no_orphan_processes()

    def test_validation_errors_raised_locally(self):
        g = random_connected_graph(20, 0.2, 37)
        with ShardedConnectorService(g, n_shards=2) as sharded:
            with pytest.raises(InvalidQueryError):
                sharded.solve([])
            with pytest.raises(InvalidQueryError):
                sharded.solve([10**9])
            assert sharded.stats().requests_routed == 0

    def test_single_vertex_query(self):
        g = random_connected_graph(20, 0.2, 41)
        only = sorted(g.nodes())[0]
        with ShardedConnectorService(g, n_shards=2) as sharded:
            assert sharded.solve([only]).nodes == frozenset([only])

    def test_baseline_methods_served_by_router_not_shards(self):
        g = random_connected_graph(30, 0.12, 43)
        rng = random.Random(43)
        query = rng.sample(sorted(g.nodes()), 3)
        with ShardedConnectorService(g, n_shards=2) as sharded:
            for tag in METHODS:
                result = sharded.solve(query, SolveOptions(method=tag))
                assert result.nodes == METHODS[tag].solve(g, query).nodes
            assert sharded.stats().requests_routed == 1  # only the ws-q default


class TestLifecycle:
    def test_close_terminates_shards_and_is_idempotent(self):
        g = random_connected_graph(24, 0.15, 47)
        sharded = ShardedConnectorService(g, n_shards=3)
        sharded.solve_many(random_query_batch(g, random.Random(47), 2))
        sharded.close()
        sharded.close()
        assert_no_orphan_processes()
        with pytest.raises(RuntimeError):
            sharded.solve([0, 1])
        with pytest.raises(RuntimeError):
            sharded.resize(2)
        with pytest.raises(RuntimeError):
            sharded.stats()

    def test_context_manager_reaps_on_exception(self):
        g = random_connected_graph(24, 0.15, 53)
        with pytest.raises(RuntimeError, match="sentinel"):
            with ShardedConnectorService(g, n_shards=2):
                raise RuntimeError("sentinel")
        assert_no_orphan_processes()

    def test_rejects_bad_shard_counts(self):
        g = random_connected_graph(12, 0.3, 59)
        with pytest.raises(ValueError):
            ShardedConnectorService(g, n_shards=0)


class TestSolveOptionsKeys:
    """The stable-key layer the shard router hashes on (and the plain
    hashing/equality the in-process caches key on) across every field."""

    #: One distinct-from-default value per SolveOptions field.
    VARIANTS = {
        "method": "st",
        "beta": 0.5,
        "roots": (1, 2),
        "selection": "wiener",
        "adjust": False,
        "lambda_values": (1.0, 2.0),
        "backend": "dict",
        "exact_threshold": 10,
        "sample_sources": 8,
        "sample_seed": 3,
    }

    #: Fields certified not to change the answer, hence *excluded* from the
    #: routing digest (pruned and unpruned asks of one query must land on
    #: the same shard and coalesce in the gateway).
    DIGEST_NEUTRAL = {"prune": False}

    def test_variants_cover_every_field(self):
        field_names = {f.name for f in dataclasses.fields(SolveOptions)}
        assert set(self.VARIANTS) | set(self.DIGEST_NEUTRAL) == field_names

    def test_digest_neutral_fields_share_routing_key(self):
        base = SolveOptions()
        for field, value in self.DIGEST_NEUTRAL.items():
            changed = base.replace(**{field: value})
            # Still a distinct equality/hash key (separate cache entries) —
            # only the cross-process routing digest treats them as one.
            assert changed != base
            assert changed.stable_digest() == base.stable_digest()

    @pytest.mark.parametrize("field", sorted(VARIANTS))
    def test_each_field_participates_in_equality_hash_and_digest(self, field):
        base = SolveOptions()
        changed = base.replace(**{field: self.VARIANTS[field]})
        assert changed != base
        assert changed.stable_digest() != base.stable_digest()
        twin = base.replace(**{field: self.VARIANTS[field]})
        assert changed == twin
        assert hash(changed) == hash(twin)
        assert changed.stable_digest() == twin.stable_digest()

    def test_all_single_field_variants_mutually_distinct(self):
        digests = {SolveOptions().stable_digest()}
        for field, value in self.VARIANTS.items():
            digests.add(SolveOptions(**{field: value}).stable_digest())
        assert len(digests) == len(self.VARIANTS) + 1

    def test_normalized_iterables_share_key(self):
        """Lists normalize to tuples, so equal *values* are equal keys."""
        a = SolveOptions(roots=[3, 1], lambda_values=[0.5])
        b = SolveOptions(roots=(3, 1), lambda_values=(0.5,))
        assert a == b
        assert hash(a) == hash(b)
        assert a.stable_digest() == b.stable_digest()

    def test_equal_values_with_different_reprs_share_digest(self):
        """``beta=1`` and ``beta=1.0`` are one key to every equality-based
        cache, so the routing digest must agree too — for option fields
        and for query vertices alike."""
        assert SolveOptions(beta=1) == SolveOptions(beta=1.0)
        assert (
            SolveOptions(beta=1).stable_digest()
            == SolveOptions(beta=1.0).stable_digest()
        )
        assert (
            SolveOptions(roots=(1, 2)).stable_digest()
            == SolveOptions(roots=(1.0, 2.0)).stable_digest()
        )
        options = SolveOptions()
        assert request_digest(frozenset([1, 2]), options) == request_digest(
            frozenset([1.0, 2.0]), options
        )
        # bools are not canonicalized into floats (True != 1.0 as a label key
        # would be wrong for adjust-style flags)
        assert (
            SolveOptions(adjust=True).stable_digest()
            != SolveOptions(adjust=False).stable_digest()
        )

    def test_digest_survives_pickling(self):
        """The routing key must agree between router and shard processes."""
        options = SolveOptions(beta=0.5, roots=(2, 7), selection="wiener")
        clone = pickle.loads(pickle.dumps(options))
        assert clone == options
        assert clone.stable_digest() == options.stable_digest()


class TestShardedStatsHitRate:
    def test_zero_lookup_guard_and_aggregation(self):
        graph = random_connected_graph(24, 0.18, seed=83)
        with ShardedConnectorService(graph, n_shards=2) as service:
            cold = service.stats()
            for layer in ("result", "candidate", "score"):
                assert cold.hit_rate(layer) == 0.0
            queries = random_query_batch(graph, random.Random(3), 4)
            # Two batches: within one batch duplicates are deduped by the
            # router and never reach a shard cache; re-asks across batches
            # are the shard-warm path hit_rate() measures.
            service.solve_many(queries)
            service.solve_many(queries)
            warm = service.stats()
        expected = warm.result_hits / (
            warm.result_hits
            + sum(shard.result_misses for shard in warm.shards)
        )
        assert warm.hit_rate() == expected
        assert warm.hit_rate() >= 0.5  # every re-ask is a shard-warm hit
        with pytest.raises(ValueError, match="unknown cache layer"):
            warm.hit_rate("bfs")

    def test_router_local_fallback_traffic_counts_as_warm(self):
        """Baseline methods are served by the router's local service; their
        cache hits belong in the aggregate stats."""
        graph = random_connected_graph(20, 0.2, seed=89)
        query = sorted(graph.nodes())[:3]
        with ShardedConnectorService(graph, n_shards=2) as service:
            options = SolveOptions(method="st")
            service.solve_many([query], options)
            service.solve_many([query], options)  # local result-cache hit
            stats = service.stats()
        assert stats.router_local is not None
        assert stats.result_hits >= 1
        assert stats.hit_rate() > 0.0
        assert stats.queries_served >= 2
