"""Tests for community detection and ground-truth community substrates."""

import random

import pytest

from repro.errors import GraphError
from repro.communities import (
    CommunityGraph,
    community_of_query,
    community_recovery_score,
    greedy_modularity_communities,
    label_propagation_communities,
    make_community_graph,
    membership_map,
    modularity,
)
from repro.graphs.generators import complete_graph, planted_partition, connectify
from repro.graphs.graph import Graph


def two_cliques_bridge() -> Graph:
    g = Graph()
    for base in (0, 10):
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(base + i, base + j)
    g.add_edge(4, 10)
    return g


class TestModularityScore:
    def test_perfect_split_positive(self):
        g = two_cliques_bridge()
        q = modularity(g, [set(range(5)), set(range(10, 15))])
        assert q > 0.3

    def test_single_community_zero(self):
        g = complete_graph(5)
        assert modularity(g, [set(range(5))]) == pytest.approx(0.0)

    def test_matches_networkx(self):
        import networkx as nx

        g = two_cliques_bridge()
        partition = [set(range(5)), set(range(10, 15))]
        oracle = nx.Graph()
        oracle.add_edges_from(g.edges())
        expected = nx.algorithms.community.modularity(oracle, partition)
        assert modularity(g, partition) == pytest.approx(expected)

    def test_overlapping_communities_rejected(self):
        g = complete_graph(4)
        with pytest.raises(GraphError):
            modularity(g, [{0, 1}, {1, 2, 3}])

    def test_empty_graph(self):
        assert modularity(Graph(nodes=[1, 2]), [{1}, {2}]) == 0.0


class TestGreedyModularity:
    def test_recovers_two_cliques(self):
        g = two_cliques_bridge()
        communities = greedy_modularity_communities(g)
        assert sorted(map(sorted, communities)) == [
            list(range(5)), list(range(10, 15))
        ]

    def test_target_count(self):
        rng = random.Random(0)
        g, _ = planted_partition([20, 20, 20, 20], 0.4, 0.02, rng=rng)
        connectify(g, rng=rng)
        communities = greedy_modularity_communities(g, target_count=4)
        assert len(communities) == 4

    def test_recovers_planted_partition(self):
        rng = random.Random(1)
        g, truth = planted_partition([30, 30, 30], 0.35, 0.01, rng=rng)
        connectify(g, rng=rng)
        found = greedy_modularity_communities(g)
        assert community_recovery_score(truth, found) >= 2 / 3

    def test_empty_graph(self):
        assert greedy_modularity_communities(Graph(nodes=[1, 2])) == [{1}, {2}]


class TestLabelPropagation:
    def test_recovers_two_cliques(self):
        g = two_cliques_bridge()
        communities = label_propagation_communities(g, rng=random.Random(3))
        assert len(communities) <= 3
        largest = communities[0]
        assert largest <= set(range(5)) or largest <= set(range(10, 15)) or len(largest) >= 5

    def test_recovers_planted_partition(self):
        rng = random.Random(4)
        g, truth = planted_partition([40, 40], 0.4, 0.005, rng=rng)
        connectify(g, rng=rng)
        found = label_propagation_communities(g, rng=random.Random(5))
        assert community_recovery_score(truth, found) >= 0.5


class TestMembershipHelpers:
    def test_membership_map(self):
        mapping = membership_map([{1, 2}, {3}])
        assert mapping == {1: 0, 2: 0, 3: 1}

    def test_community_of_query(self):
        mapping = {1: 0, 2: 0, 3: 1}
        assert community_of_query(mapping, [1, 3]) == {0, 1}


class TestCommunityGraph:
    def test_construction_and_queries(self):
        data = make_community_graph("toy", [20, 25], p_in=0.4, p_out=0.02, seed=6)
        assert isinstance(data, CommunityGraph)
        assert data.graph.num_nodes == 45
        assert len(data.communities) == 2
        assert data.communities_of([0, 44]) == {0, 1}
        assert data.large_communities(min_size=21) == [data.communities[1]]

    def test_connected(self):
        from repro.graphs.components import is_connected

        data = make_community_graph("toy", [15, 15, 15], 0.4, 0.0, seed=7)
        assert is_connected(data.graph)


class TestRecoveryScore:
    def test_perfect(self):
        truth = [{1, 2, 3}, {4, 5}]
        assert community_recovery_score(truth, truth) == 1.0

    def test_no_overlap(self):
        assert community_recovery_score([{1, 2}], [{3, 4}]) == 0.0

    def test_empty_truth(self):
        assert community_recovery_score([], [{1}]) == 1.0
