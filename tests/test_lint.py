"""The invariant checker's own gate: ``repro.analysis`` + ``repro lint``.

Pyflakes-style fixture discipline: every registered rule ships a
``fixtures/rpr0xx_bad.py`` that must fire and a ``rpr0xx_good.py`` twin
that must stay silent — parametrized over the registry so adding a rule
without its pair fails here, not in review.  On top of that: suppression
and unused-suppression behavior, path-scoped policy routing (the pickle
ban knows the shard wire from the gateway), the ``--json`` report shape,
``--explain`` self-documentation, the acceptance scenarios from the PR
(the resurrected PR 3 salted-``hash()`` routing bug and the PR 4
unbounded gateway stats list are both caught), and the meta-test: the
linter runs clean on the repo's own ``src/repro`` tree.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    Registry,
    default_registry,
    lint_paths,
    lint_source,
)
from repro.analysis.engine import HYGIENE_RULE_ID, canonical_path
from repro.analysis.report import render_json, render_text
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURES = SRC_TREE / "analysis" / "fixtures"

# Each fixture is linted as if it lived at a path squarely inside the
# rule's scope, so scoping never masks a broken checker.
SCOPED_PATHS = {
    "RPR001": "repro/core/sharded.py",
    "RPR002": "repro/core/gateway.py",
    "RPR003": "repro/serving/protocol.py",
    "RPR004": "repro/core/gateway.py",
    "RPR005": "repro/core/sharded.py",
    "RPR006": "repro/graphs/generators.py",
    "RPR007": "repro/core/sharded.py",
    "RPR008": "repro/loadgen/trace.py",
}


def one_rule(rule_id: str):
    return [default_registry().get(rule_id)]


def lint_fixture(name: str, rule_id: str) -> list[Finding]:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, SCOPED_PATHS[rule_id], one_rule(rule_id))


# ---------------------------------------------------------------------------
# Fixture corpus: every rule fires on bad, stays silent on good
# ---------------------------------------------------------------------------


def test_registry_has_at_least_eight_rules():
    assert len(default_registry().ids()) >= 8


@pytest.mark.parametrize("rule_id", sorted(SCOPED_PATHS))
def test_bad_fixture_fires(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_bad.py", rule_id)
    assert findings, f"{rule_id} must fire on its bad fixture"
    assert all(f.rule_id == rule_id for f in findings)


@pytest.mark.parametrize("rule_id", sorted(SCOPED_PATHS))
def test_good_fixture_silent(rule_id):
    findings = lint_fixture(f"{rule_id.lower()}_good.py", rule_id)
    assert findings == [], f"{rule_id} must stay silent on its good twin"


def test_every_registered_rule_has_a_fixture_pair():
    for rule_id in default_registry().ids():
        stem = rule_id.lower()
        assert (FIXTURES / f"{stem}_bad.py").is_file(), rule_id
        assert (FIXTURES / f"{stem}_good.py").is_file(), rule_id
        assert rule_id in SCOPED_PATHS, f"add {rule_id} to SCOPED_PATHS"


def test_every_rule_documents_itself():
    registry = default_registry()
    for rule_id in registry.ids():
        rule = registry.get(rule_id)
        assert rule.description
        assert rule.rationale, f"{rule_id} needs an --explain rationale"


# ---------------------------------------------------------------------------
# Acceptance scenarios: the shipped bugs stay dead
# ---------------------------------------------------------------------------


def test_pr3_salted_hash_routing_bug_is_caught():
    # The exact shape PR 3 fixed: ring placement keyed on builtin hash().
    source = (
        "def placement(self, query, options):\n"
        "    return hash((tuple(query), options.stable_repr())) % self.slots\n"
    )
    findings = lint_source(source, "repro/core/sharded.py", one_rule("RPR001"))
    assert [f.rule_id for f in findings] == ["RPR001"]


def test_pr4_unbounded_gateway_stats_list_is_caught():
    # The exact shape PR 4 fixed: per-batch telemetry into a plain list.
    source = (
        "class AsyncGateway:\n"
        "    def __init__(self):\n"
        "        self._window_sizes = []\n"
        "    def _dispatch(self, window):\n"
        "        self._window_sizes.append(len(window))\n"
    )
    findings = lint_source(source, "repro/core/gateway.py", one_rule("RPR004"))
    assert [f.rule_id for f in findings] == ["RPR004"]
    assert "_window_sizes" in findings[0].message


def test_deque_maxlen_is_the_sanctioned_fix():
    source = (
        "from collections import deque\n"
        "class AsyncGateway:\n"
        "    def __init__(self):\n"
        "        self._window_sizes = deque(maxlen=256)\n"
        "    def _dispatch(self, window):\n"
        "        self._window_sizes.append(len(window))\n"
    )
    assert not lint_source(
        source, "repro/core/gateway.py", one_rule("RPR004")
    )


def test_done_callback_discard_counts_as_draining():
    # The asyncio bookkeeping idiom: membership drained by done-callback.
    source = (
        "class Server:\n"
        "    def __init__(self):\n"
        "        self._tasks = set()\n"
        "    def track(self, task):\n"
        "        self._tasks.add(task)\n"
        "        task.add_done_callback(self._tasks.discard)\n"
    )
    assert not lint_source(source, "repro/serving/server.py", one_rule("RPR004"))


def test_transport_tuple_alias_is_resolved():
    source = (
        "_FAILURES = (EOFError, OSError, ShardTransportError)\n"
        "def call(link):\n"
        "    try:\n"
        "        return link.request()\n"
        "    except _FAILURES:\n"
        "        return None\n"
    )
    findings = lint_source(source, "repro/core/sharded.py", one_rule("RPR007"))
    assert [f.rule_id for f in findings] == ["RPR007"]


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

SUPPRESSED = (
    "def placement(query, slots):\n"
    "    return hash(tuple(query)) % slots  # repro-lint: disable=RPR001\n"
)


def test_suppression_silences_the_finding():
    assert not lint_source(SUPPRESSED, "repro/core/x.py", one_rule("RPR001"))


def test_suppression_on_preceding_comment_line():
    source = (
        "def placement(query, slots):\n"
        "    # repro-lint: disable=RPR001\n"
        "    return hash(tuple(query)) % slots\n"
    )
    assert not lint_source(source, "repro/core/x.py", one_rule("RPR001"))


def test_unused_suppression_is_itself_a_finding():
    source = "def fine():\n    return 1  # repro-lint: disable=RPR001\n"
    findings = lint_source(source, "repro/core/x.py", one_rule("RPR001"))
    assert [f.rule_id for f in findings] == [HYGIENE_RULE_ID]
    assert "unused suppression" in findings[0].message


def test_unused_suppression_not_reported_for_disabled_rules():
    # A --select RPR003 run must not call an RPR001 annotation stale.
    source = "def fine():\n    return 1  # repro-lint: disable=RPR001\n"
    assert not lint_source(source, "repro/core/x.py", one_rule("RPR003"))


def test_suppression_is_per_line_not_per_file():
    source = SUPPRESSED + "def other(query, slots):\n    return hash(query)\n"
    findings = lint_source(source, "repro/core/x.py", one_rule("RPR001"))
    assert [f.rule_id for f in findings] == ["RPR001"]
    assert findings[0].line == 4


def test_syntax_error_reports_instead_of_crashing():
    findings = lint_source("def broken(:\n", "repro/core/x.py", one_rule("RPR001"))
    assert [f.rule_id for f in findings] == [HYGIENE_RULE_ID]
    assert "does not parse" in findings[0].message


# ---------------------------------------------------------------------------
# Path-scoped policies
# ---------------------------------------------------------------------------

PICKLE_SOURCE = "import pickle\n\ndef enc(v):\n    return pickle.dumps(v)\n"


def test_pickle_banned_on_the_protocol_and_gateway():
    for path in ("repro/serving/protocol.py", "repro/core/gateway.py"):
        findings = lint_source(PICKLE_SOURCE, path, one_rule("RPR003"))
        assert findings, f"pickle must be flagged at {path}"


def test_pickle_allowed_on_the_shard_wire():
    for path in ("repro/serving/remote.py", "repro/serving/pickled.py"):
        assert not lint_source(PICKLE_SOURCE, path, one_rule("RPR003")), path


def test_unseeded_random_banned_in_src_not_tests():
    source = "import random\n\ndef jitter():\n    return random.random()\n"
    assert lint_source(source, "repro/loadgen/trace.py", one_rule("RPR006"))
    assert not lint_source(source, "tests/test_trace.py", one_rule("RPR006"))


def test_rng_caller_opt_in_idiom_is_exempt():
    source = (
        "import random\n"
        "def synthesize(rng=None):\n"
        "    rng = rng or random.Random()\n"
        "    return rng.random()\n"
    )
    assert not lint_source(source, "repro/loadgen/trace.py", one_rule("RPR006"))


def test_canonical_path_strips_checkout_layout():
    assert canonical_path("src/repro/core/sharded.py") == "repro/core/sharded.py"
    assert canonical_path("repro/core/sharded.py") == "repro/core/sharded.py"
    assert canonical_path("tests/test_lint.py") == "tests/test_lint.py"


def test_registry_select_and_ignore():
    registry = default_registry()
    assert [r.id for r in registry.select(["RPR003"])] == ["RPR003"]
    remaining = [r.id for r in registry.select(None, ["RPR003"])]
    assert "RPR003" not in remaining and len(remaining) >= 7
    with pytest.raises(KeyError, match="RPR999"):
        registry.select(["RPR999"])


def test_registry_rejects_duplicate_ids():
    registry = Registry()
    rule = default_registry().get("RPR001")
    registry.register(rule)
    with pytest.raises(ValueError, match="duplicate"):
        registry.register(rule)


# ---------------------------------------------------------------------------
# Reports + CLI
# ---------------------------------------------------------------------------


def test_json_report_shape(tmp_path):
    bad = tmp_path / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "router.py").write_text(
        "def place(q, n):\n    return hash(q) % n\n", encoding="utf-8"
    )
    result = lint_paths([tmp_path], select=["RPR001"])
    payload = json.loads(render_json(result))
    assert set(payload) == {"files", "findings", "count", "ok"}
    assert payload["count"] == 1 and payload["ok"] is False
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
    assert finding["rule"] == "RPR001"
    assert finding["path"].endswith("repro/core/router.py")
    assert finding["line"] == 2


def test_findings_order_is_stable():
    source = (
        "import time\n"
        "async def h(svc):\n"
        "    time.sleep(1)\n"
        "    svc.solve_many([], None)\n"
    )
    rules = default_registry().select(["RPR002"])
    findings = lint_source(source, "repro/core/gateway.py", rules)
    assert [f.line for f in findings] == [3, 4]
    assert render_text(
        type("R", (), {"findings": findings, "files": 1})()
    ).startswith("repro/core/gateway.py:3:")


def test_cli_lint_clean_tree_exits_zero(capsys):
    assert cli_main(["lint", str(SRC_TREE)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_finding_exits_one(tmp_path, capsys):
    target = tmp_path / "repro" / "core" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(q):\n    return hash(q)\n", encoding="utf-8")
    assert cli_main(["lint", str(tmp_path), "--select", "RPR001"]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out


def test_cli_lint_json_flag(tmp_path, capsys):
    target = tmp_path / "repro" / "core" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(q):\n    return hash(q)\n", encoding="utf-8")
    assert cli_main(["lint", str(tmp_path), "--select", "RPR001", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "RPR001"


def test_cli_lint_unknown_rule_exits_two(capsys):
    assert cli_main(["lint", str(SRC_TREE), "--select", "RPR999"]) == 2
    assert "unknown rule" in capsys.readouterr().out


def test_cli_lint_missing_path_exits_two(capsys):
    assert cli_main(["lint", "no/such/dir"]) == 2
    assert "no such path" in capsys.readouterr().out


def test_cli_explain_prints_rationale_and_examples(capsys):
    assert cli_main(["lint", "--explain", "RPR003"]) == 0
    out = capsys.readouterr().out
    assert "RPR003" in out
    assert "Fires on:" in out and "Stays silent on:" in out
    assert "pickle" in out


def test_cli_explain_unknown_rule_exits_two(capsys):
    assert cli_main(["lint", "--explain", "RPR999"]) == 2


# ---------------------------------------------------------------------------
# Meta: the repo itself is clean, and the fixture corpus is excluded
# ---------------------------------------------------------------------------


def test_repo_src_tree_is_clean():
    result = lint_paths([SRC_TREE])
    assert result.findings == [], render_text(result)
    assert result.files > 50  # the whole package was actually walked


def test_fixture_corpus_is_never_linted_as_project_code():
    result = lint_paths([FIXTURES])
    assert result.files == 0 and result.findings == []


# ---------------------------------------------------------------------------
# Satellite: the typed lifecycle taxonomy keeps its string contracts
# ---------------------------------------------------------------------------


def test_lifecycle_errors_are_runtimeerror_subclasses():
    from repro.errors import ReproError, ServerStateError, ServiceClosedError

    for cls in (ServiceClosedError, ServerStateError):
        assert issubclass(cls, RuntimeError)
        assert issubclass(cls, ReproError)


def test_server_lifecycle_raises_typed_state_error():
    from repro.errors import ServerStateError
    from repro.serving.server import GatewayServer

    server = GatewayServer.__new__(GatewayServer)
    server._server = None
    with pytest.raises(ServerStateError, match="server is not started"):
        _ = server.port
    # The old `except RuntimeError` call sites keep working untouched.
    with pytest.raises(RuntimeError, match="server is not started"):
        _ = server.addresses
