"""Tests for connectivity utilities."""

import pytest

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph
from repro.graphs.components import (
    connected_components,
    is_connected,
    is_tree,
    largest_component,
    largest_component_subgraph,
    nodes_connect,
    require_connected,
    spanning_forest_edges,
)


def disconnected() -> Graph:
    return Graph([(0, 1), (2, 3), (3, 4)], nodes=[9])


class TestComponents:
    def test_single_component(self, triangle):
        assert connected_components(triangle) == [{0, 1, 2}]

    def test_multiple_components(self):
        components = connected_components(disconnected())
        assert sorted(map(sorted, components)) == [[0, 1], [2, 3, 4], [9]]

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_largest_component(self):
        assert largest_component(disconnected()) == {2, 3, 4}

    def test_largest_component_subgraph(self):
        sub = largest_component_subgraph(disconnected())
        assert sub.num_nodes == 3
        assert sub.num_edges == 2


class TestIsConnected:
    def test_connected(self, path5):
        assert is_connected(path5)

    def test_disconnected(self):
        assert not is_connected(disconnected())

    def test_empty_and_singleton(self):
        assert is_connected(Graph())
        assert is_connected(Graph(nodes=[1]))

    def test_require_connected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            require_connected(disconnected())
        require_connected(Graph([(0, 1)]))  # no raise


class TestNodesConnect:
    def test_connected_subset(self, two_triangles_bridge):
        assert nodes_connect(two_triangles_bridge, [0, 1, 2])

    def test_disconnected_subset(self, two_triangles_bridge):
        # 0 and 4 without the bridge vertices are not connected.
        assert not nodes_connect(two_triangles_bridge, [0, 4])

    def test_subset_with_bridge(self, two_triangles_bridge):
        assert nodes_connect(two_triangles_bridge, [0, 2, 3, 4])

    def test_empty_and_missing(self, triangle):
        assert nodes_connect(triangle, [])
        assert not nodes_connect(triangle, [0, 99])


class TestTrees:
    def test_path_is_tree(self, path5):
        assert is_tree(path5)

    def test_cycle_is_not_tree(self, triangle):
        assert not is_tree(triangle)

    def test_forest_is_not_tree(self):
        assert not is_tree(Graph([(0, 1), (2, 3)]))

    def test_empty_is_tree(self):
        assert is_tree(Graph())

    def test_spanning_forest_edge_count(self):
        g = disconnected()
        edges = spanning_forest_edges(g)
        # |V| - #components edges in a spanning forest.
        assert len(edges) == g.num_nodes - len(connected_components(g))
