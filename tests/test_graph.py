"""Unit tests for repro.graphs.graph (Graph and WeightedGraph)."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graphs.graph import Graph, WeightedGraph


class TestGraphConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_isolated_nodes(self):
        g = Graph(nodes=[7, 8])
        assert g.num_nodes == 2
        assert g.degree(7) == 0

    def test_duplicate_edges_collapse(self):
        g = Graph([(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph([(1, 1)])

    def test_string_nodes(self):
        g = Graph([("a", "b")])
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")


class TestGraphMutation:
    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert g.has_node(1)

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 3)

    def test_remove_node_drops_incident_edges(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            Graph().remove_node(0)


class TestGraphQueries:
    def test_neighbors(self, triangle):
        assert triangle.neighbors(0) == {1, 2}

    def test_neighbors_missing_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.neighbors(99)

    def test_degree(self, star):
        assert star.degree(0) == 5
        assert star.degree(3) == 1

    def test_edges_each_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        canonical = {frozenset(e) for e in edges}
        assert len(canonical) == 3

    def test_contains_len_iter(self, path5):
        assert 3 in path5
        assert 9 not in path5
        assert len(path5) == 5
        assert sorted(path5) == [0, 1, 2, 3, 4]

    def test_repr(self, triangle):
        assert "3" in repr(triangle)

    def test_equality(self):
        assert Graph([(1, 2)]) == Graph([(2, 1)])
        assert Graph([(1, 2)]) != Graph([(1, 3)])

    def test_unhashable(self, triangle):
        with pytest.raises(TypeError):
            hash(triangle)


class TestSubgraph:
    def test_induced_subgraph(self, two_triangles_bridge):
        sub = two_triangles_bridge.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_subgraph_excludes_outside_edges(self, two_triangles_bridge):
        sub = two_triangles_bridge.subgraph([2, 3])
        assert sub.num_edges == 1

    def test_subgraph_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.subgraph([0, 99])

    def test_subgraph_is_independent_copy(self, triangle):
        sub = triangle.subgraph([0, 1])
        sub.add_edge(0, 7)
        assert not triangle.has_node(7)

    def test_copy_independent(self, triangle):
        clone = triangle.copy()
        clone.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)
        assert clone.num_edges == 2

    def test_relabeled(self):
        g = Graph([("x", "y"), ("y", "z")])
        relabeled, mapping = g.relabeled()
        assert sorted(relabeled.nodes()) == [0, 1, 2]
        assert relabeled.num_edges == 2
        assert relabeled.has_edge(mapping["x"], mapping["y"])


class TestWeightedGraph:
    def test_add_and_query(self):
        g = WeightedGraph()
        g.add_edge("a", "b", 2.5)
        assert g.weight("a", "b") == 2.5
        assert g.weight("b", "a") == 2.5

    def test_from_edge_iterable(self):
        g = WeightedGraph([(1, 2, 1.0), (2, 3, 4.0)])
        assert g.num_edges == 2
        assert g.total_weight() == 5.0

    def test_overwrite_weight(self):
        g = WeightedGraph([(1, 2, 1.0)])
        g.add_edge(1, 2, 9.0)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 9.0

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph([(1, 2, -1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph([(1, 1, 1.0)])

    def test_missing_edge_raises(self):
        g = WeightedGraph([(1, 2, 1.0)])
        with pytest.raises(EdgeNotFoundError):
            g.weight(1, 3)

    def test_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            WeightedGraph().neighbors(1)

    def test_unweighted_roundtrip(self):
        g = WeightedGraph([(1, 2, 3.0), (2, 3, 1.0)])
        plain = g.unweighted()
        assert plain.num_edges == 2
        assert plain.has_edge(1, 2)

    def test_from_graph(self, triangle):
        weighted = WeightedGraph.from_graph(triangle, weight=2.0)
        assert weighted.num_edges == 3
        assert weighted.total_weight() == 6.0

    def test_edges_each_once(self):
        g = WeightedGraph([(1, 2, 1.0), (2, 3, 2.0)])
        assert len(list(g.edges())) == 2

    def test_dunder_protocol(self):
        g = WeightedGraph([(1, 2, 1.0)])
        assert 1 in g
        assert len(g) == 2
        assert sorted(g) == [1, 2]
