"""Tests for Mehlhorn's Steiner approximation and tree utilities."""

import itertools
import random

import pytest

from helpers import random_connected_graph
from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.graphs.graph import Graph, WeightedGraph
from repro.graphs.components import is_tree
from repro.core.steiner import (
    mehlhorn_steiner_tree,
    minimum_spanning_tree,
    prune_steiner_leaves,
    steiner_tree_unweighted,
    tree_total_weight,
)


def tree_is_valid(tree: WeightedGraph, terminals) -> bool:
    plain = tree.unweighted()
    return is_tree(plain) and set(terminals) <= set(plain.nodes())


def optimal_steiner_cost(graph: WeightedGraph, terminals: set) -> float:
    """Exact Steiner cost by brute force over Steiner-vertex subsets."""
    nodes = [n for n in graph.nodes() if n not in terminals]
    best = float("inf")
    for size in range(len(nodes) + 1):
        for extra in itertools.combinations(nodes, size):
            selected = set(terminals) | set(extra)
            sub = WeightedGraph()
            for node in selected:
                sub.add_node(node)
            for u, v, w in graph.edges():
                if u in selected and v in selected:
                    sub.add_edge(u, v, w)
            mst = minimum_spanning_tree(sub)
            if mst.num_edges == len(selected) - 1:  # spanning => connected
                best = min(best, tree_total_weight(mst))
    return best


class TestMehlhorn:
    def test_two_terminals_is_shortest_path(self):
        g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)])
        tree = mehlhorn_steiner_tree(g, [0, 2])
        assert tree_is_valid(tree, [0, 2])
        assert tree_total_weight(tree) == 2.0

    def test_single_terminal(self):
        g = WeightedGraph([(0, 1, 1.0)])
        tree = mehlhorn_steiner_tree(g, [0])
        assert tree.num_nodes == 1
        assert tree.num_edges == 0

    def test_terminals_deduplicated(self):
        g = WeightedGraph([(0, 1, 1.0)])
        tree = mehlhorn_steiner_tree(g, [0, 0, 1])
        assert tree_is_valid(tree, [0, 1])

    def test_empty_terminals_raises(self):
        with pytest.raises(InvalidQueryError):
            mehlhorn_steiner_tree(WeightedGraph([(0, 1, 1.0)]), [])

    def test_unknown_terminal_raises(self):
        with pytest.raises(InvalidQueryError):
            mehlhorn_steiner_tree(WeightedGraph([(0, 1, 1.0)]), [9])

    def test_disconnected_terminals_raise(self):
        g = WeightedGraph([(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            mehlhorn_steiner_tree(g, [0, 3])

    def test_uses_steiner_vertex(self):
        # A star whose hub is the only way to join three leaves.
        g = WeightedGraph([(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
        tree = mehlhorn_steiner_tree(g, [1, 2, 3])
        assert 0 in set(tree.nodes())
        assert tree_total_weight(tree) == 3.0

    def test_no_redundant_leaves(self):
        for seed in range(5):
            g_plain = random_connected_graph(30, 0.12, seed + 70)
            rng = random.Random(seed)
            terminals = set(rng.sample(sorted(g_plain.nodes()), 5))
            tree = steiner_tree_unweighted(g_plain, terminals)
            for node in tree.nodes():
                if node not in terminals:
                    assert tree.degree(node) >= 2

    @pytest.mark.parametrize("seed", range(6))
    def test_within_factor_two_of_optimum(self, seed):
        rng = random.Random(seed + 200)
        g = WeightedGraph()
        n = 10
        for _ in range(24):
            u, v = rng.sample(range(n), 2)
            g.add_edge(u, v, rng.choice([1.0, 2.0, 3.0]))
        nodes = sorted(g.nodes())
        if len(nodes) < 4:
            pytest.skip("degenerate sample")
        terminals = set(rng.sample(nodes, 4))
        try:
            tree = mehlhorn_steiner_tree(g, terminals)
        except DisconnectedGraphError:
            pytest.skip("disconnected sample")
        assert tree_is_valid(tree, terminals)
        optimum = optimal_steiner_cost(g, terminals)
        assert tree_total_weight(tree) <= 2 * optimum + 1e-9

    def test_matches_networkx_quality(self):
        """Within 2x of networkx's steiner_tree on random instances."""
        import networkx as nx
        from networkx.algorithms.approximation import steiner_tree as nx_steiner

        for seed in range(3):
            g = random_connected_graph(40, 0.1, seed + 800)
            rng = random.Random(seed)
            terminals = rng.sample(sorted(g.nodes()), 6)
            ours = steiner_tree_unweighted(g, terminals)
            oracle = nx.Graph()
            oracle.add_edges_from(g.edges())
            theirs = nx_steiner(oracle, terminals)
            assert ours.num_edges <= 2 * max(theirs.number_of_edges(), 1)


class TestMST:
    def test_known_mst(self):
        g = WeightedGraph(
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0), (2, 3, 1.0)]
        )
        mst = minimum_spanning_tree(g)
        assert tree_total_weight(mst) == 4.0
        assert mst.num_edges == 3

    def test_matches_networkx(self):
        import networkx as nx

        rng = random.Random(31)
        g = WeightedGraph()
        for _ in range(60):
            u, v = rng.sample(range(20), 2)
            g.add_edge(u, v, rng.uniform(0.5, 9.5))
        oracle = nx.Graph()
        for u, v, w in g.edges():
            oracle.add_edge(u, v, weight=w)
        ours = tree_total_weight(minimum_spanning_tree(g))
        theirs = nx.minimum_spanning_tree(oracle).size(weight="weight")
        assert ours == pytest.approx(theirs)


class TestPruneLeaves:
    def test_prunes_chain(self):
        tree = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        pruned = prune_steiner_leaves(tree, [0, 1])
        assert set(pruned.nodes()) == {0, 1}

    def test_keeps_internal_steiner_vertices(self):
        tree = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0)])
        pruned = prune_steiner_leaves(tree, [0, 2])
        assert set(pruned.nodes()) == {0, 1, 2}

    def test_no_terminals_removed(self):
        tree = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        pruned = prune_steiner_leaves(tree, [0, 3])
        assert set(pruned.nodes()) == {0, 1, 2, 3}
