"""Tests for Wiener index computation, vs closed forms and networkx."""

import math
import random

import pytest

from helpers import random_connected_graph, to_networkx
from repro.graphs.graph import Graph
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graphs.wiener import (
    average_distance,
    distance_sum_lower_bound,
    rooted_distance_sum,
    wiener_index,
    wiener_index_of_subset,
    wiener_index_sampled,
)


class TestWienerClosedForms:
    @pytest.mark.parametrize("n", [2, 3, 5, 10])
    def test_path(self, n):
        # W(P_n) = C(n+1, 3) = n(n²-1)/6.
        assert wiener_index(path_graph(n)) == n * (n * n - 1) / 6

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_complete(self, n):
        assert wiener_index(complete_graph(n)) == n * (n - 1) / 2

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_star(self, n):
        # Hub at distance 1 from n leaves; leaves pairwise at distance 2.
        assert wiener_index(star_graph(n)) == n + 2 * (n * (n - 1) / 2)

    @pytest.mark.parametrize("n,expected", [(4, 8), (5, 15), (6, 27)])
    def test_cycle(self, n, expected):
        # W(C_n) = n³/8 for even n, n(n²-1)/8 for odd n.
        assert wiener_index(cycle_graph(n)) == expected

    def test_tiny_graphs(self):
        assert wiener_index(Graph()) == 0.0
        assert wiener_index(Graph(nodes=[1])) == 0.0
        assert wiener_index(Graph([(1, 2)])) == 1.0

    def test_disconnected_infinite(self):
        assert wiener_index(Graph([(0, 1)], nodes=[2])) == math.inf


class TestWienerVsNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_graphs(self, seed):
        import networkx as nx

        g = random_connected_graph(40, 0.12, seed + 500)
        assert wiener_index(g) == pytest.approx(nx.wiener_index(to_networkx(g)))


class TestRootedSum:
    def test_path_endpoint(self):
        assert rooted_distance_sum(path_graph(5), 0) == 0 + 1 + 2 + 3 + 4

    def test_star_hub_vs_leaf(self):
        g = star_graph(5)
        assert rooted_distance_sum(g, 0) == 5
        assert rooted_distance_sum(g, 1) == 1 + 2 * 4

    def test_disconnected_infinite(self):
        assert rooted_distance_sum(Graph([(0, 1)], nodes=[2]), 0) == math.inf


class TestAverageDistance:
    def test_matches_definition(self):
        g = path_graph(4)
        n = g.num_nodes
        assert average_distance(g) == wiener_index(g) / (n * (n - 1) / 2)

    def test_single_node(self):
        assert average_distance(Graph(nodes=[1])) == 0.0


class TestSampledWiener:
    def test_exact_when_sample_covers(self):
        g = path_graph(8)
        assert wiener_index_sampled(g, num_sources=8) == wiener_index(g)

    def test_estimate_close(self):
        g = random_connected_graph(120, 0.06, 9)
        exact = wiener_index(g)
        estimate = wiener_index_sampled(g, 60, rng=random.Random(1))
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_disconnected_infinite(self):
        g = Graph([(0, 1)], nodes=[2])
        assert wiener_index_sampled(g, 3) == math.inf


class TestSubsetAndBound:
    def test_subset_equals_subgraph(self, two_triangles_bridge):
        nodes = [0, 1, 2]
        expected = wiener_index(two_triangles_bridge.subgraph(nodes))
        assert wiener_index_of_subset(two_triangles_bridge, nodes) == expected

    def test_lower_bound_is_lower(self):
        for seed in range(4):
            g = random_connected_graph(25, 0.15, seed + 900)
            rng = random.Random(seed)
            nodes = rng.sample(sorted(g.nodes()), 5)
            bound = distance_sum_lower_bound(g, nodes)
            # Any connector containing `nodes` has at least this Wiener index;
            # in particular the full graph restricted to any connected superset.
            actual = wiener_index(g.subgraph(g.nodes()))
            assert bound <= actual + 1e-9

    def test_lower_bound_disconnected(self):
        g = Graph([(0, 1)], nodes=[2])
        assert distance_sum_lower_bound(g, [0, 2]) == math.inf
