"""The mutation subsystem: canonical deltas, epochs, and tower-wide identity.

The contract under test is the **identity contract of the versioned
graph**: after any sequence of :class:`~repro.core.versioned.GraphDelta`
applications, every answer the tower returns — cold or warm, one process
or a replicated ring, pipe or socket transport, before or after a
failover — is bit-identical to a cold one-shot ``wiener_steiner`` solve
on the mutated graph.  Around that tentpole: unit tests for the delta
value type (canonicalization, digests, the pure-JSON wire form), the
graph mutation primitives it replays through, ``index_digest`` stability
properties under mutation, the defensive-copy regression (mutating a
submitted graph must not corrupt cached answers), epoch-mismatch typing,
and one chaos case — a replica killed around a mutate heals back to the
ring's epoch via catch-up deltas.
"""

from __future__ import annotations

import asyncio
import random
import socket
import subprocess
import sys
import time
from contextlib import contextmanager

import pytest

from helpers import (
    assert_connector_identical,
    assert_no_orphan_processes,
    random_connected_graph,
    random_query_batch,
    spawn_shard_host,
)
from repro.core.gateway import AsyncGateway
from repro.core.options import SolveOptions
from repro.core.retry import BackoffPolicy
from repro.core.service import ConnectorService
from repro.core.sharded import ShardLinkError, ShardedConnectorService
from repro.core.versioned import (
    GraphDelta,
    VersionedIndex,
    csr_has_edge,
    index_digest_of,
)
from repro.core.wiener_steiner import wiener_steiner
from repro.errors import DeltaError, EdgeNotFoundError, GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph, WeightedGraph
from repro.serving.remote import RemoteShardTransport, ShardHostServer
from repro.serving.server import AsyncConnectorClient, GatewayServer, ServerError

#: Fast revival pacing for the chaos test; real deployments wait seconds.
FAST_BACKOFF = BackoffPolicy(base_delay=0.05, max_delay=0.3, jitter=0.0)


def run(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=120))


@contextmanager
def shard_hosts(graph, count: int):
    """``count`` in-process shard-host daemons over replicas of ``graph``."""
    hosts = [
        ShardHostServer(ConnectorService(graph)).start() for _ in range(count)
    ]
    try:
        yield [f"127.0.0.1:{host.port}" for host in hosts]
    finally:
        for host in hosts:
            host.close()


def _connected_after_removal(graph: Graph, u, v) -> bool:
    """Whether dropping the edge ``{u, v}`` keeps the graph connected."""
    seen = {u}
    stack = [u]
    while stack:
        x = stack.pop()
        for y in graph.neighbors(x):
            if (x == u and y == v) or (x == v and y == u):
                continue
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return v in seen


def delta_for(graph: Graph, rng: random.Random, ops: int = 3) -> GraphDelta:
    """A random applicable, connectivity-preserving delta.

    Deletes only bridgeless existing edges and inserts only absent pairs,
    so the mutated graph stays connected and every query remains
    solvable — the fuzz compares answers, not error spellings.
    """
    edges = sorted(graph.edges(), key=repr)
    nodes = sorted(graph.nodes())
    inserts, deletes = [], []
    taken: set[frozenset] = set()
    scratch = graph.copy()
    for _ in range(ops):
        if rng.random() < 0.5:
            candidates = [
                edge for edge in edges
                if frozenset(edge) not in taken
                and _connected_after_removal(scratch, *edge)
            ]
            if candidates:
                u, v = candidates[rng.randrange(len(candidates))]
                deletes.append((u, v))
                scratch.remove_edge(u, v)
                taken.add(frozenset((u, v)))
                continue
        while True:
            u, v = rng.sample(nodes, 2)
            if not scratch.has_edge(u, v) and frozenset((u, v)) not in taken:
                break
        inserts.append((u, v))
        scratch.add_edge(u, v)
        taken.add(frozenset((u, v)))
    return GraphDelta(inserts=tuple(inserts), deletes=tuple(deletes))


# ----------------------------------------------------------------------
# GraphDelta: a canonical value type
# ----------------------------------------------------------------------
class TestGraphDelta:
    def test_canonicalizes_endpoint_and_op_order(self):
        delta = GraphDelta(inserts=((5, 2), (1, 0)), deletes=((9, 3),))
        assert delta.inserts == ((0, 1), (2, 5))
        assert delta.deletes == ((3, 9),)

    def test_same_mutation_compares_equal_and_shares_a_digest(self):
        a = GraphDelta(inserts=((5, 2), (1, 0)), reweights=((7, 4, 2),))
        b = GraphDelta(inserts=((0, 1), (2, 5)), reweights=((4, 7, 2.0),))
        assert a == b
        assert a.digest() == b.digest()

    def test_different_ops_on_the_same_edge_have_different_digests(self):
        insert = GraphDelta(inserts=((0, 1),))
        delete = GraphDelta(deletes=((0, 1),))
        reweight = GraphDelta(reweights=((0, 1, 2.0),))
        digests = {insert.digest(), delete.digest(), reweight.digest()}
        assert len(digests) == 3

    def test_one_op_per_edge(self):
        with pytest.raises(DeltaError, match="more than one delta op"):
            GraphDelta(inserts=((0, 1),), deletes=((1, 0),))
        with pytest.raises(DeltaError, match="more than one delta op"):
            GraphDelta(inserts=((0, 1), (1, 0)))

    def test_rejects_self_loops_empty_batches_negative_weights(self):
        with pytest.raises(DeltaError, match="self-loop"):
            GraphDelta(inserts=((3, 3),))
        with pytest.raises(DeltaError, match="at least one op"):
            GraphDelta()
        with pytest.raises(DeltaError, match="negative weight"):
            GraphDelta(reweights=((0, 1, -2.0),))

    def test_shape_helpers(self):
        delta = GraphDelta(
            inserts=((0, 1),), deletes=((2, 3),), reweights=((4, 5, 2.0),)
        )
        assert delta.num_ops == 3
        assert delta.touched_edges() == [(0, 1), (2, 3), (4, 5)]
        assert delta.touched_nodes() == {0, 1, 2, 3, 4, 5}

    def test_payload_round_trip(self):
        delta = GraphDelta(
            inserts=((5, 2),), deletes=((1, 0),), reweights=((7, 4, 2),)
        )
        payload = delta.to_payload()
        assert payload == {
            "insert": [[2, 5]],
            "delete": [[0, 1]],
            "reweight": [[4, 7, 2.0]],
        }
        assert GraphDelta.from_payload(payload) == delta

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"inserts": [[0, 1]]},  # unknown key (the op names are singular)
            {"insert": [[0, 1, 2]]},
            {"insert": [0]},
            {"delete": ["uv"]},
            {"reweight": [[0, 1]]},
        ],
    )
    def test_malformed_payloads_are_rejected(self, payload):
        with pytest.raises(DeltaError):
            GraphDelta.from_payload(payload)


# ----------------------------------------------------------------------
# Graph mutation primitives (the ops a delta replays through)
# ----------------------------------------------------------------------
class TestGraphMutationPrimitives:
    def test_graph_remove_edge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.remove_edge(1, 0)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 1
        assert 0 in set(graph.nodes())  # endpoints survive their edges
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_weighted_remove_edge(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 3.0)
        graph.remove_edge(1, 0)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_weighted_set_weight_never_creates_edges(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.set_weight(1, 0, 5.0)
        assert graph.weight(0, 1) == 5.0
        with pytest.raises(EdgeNotFoundError):
            graph.set_weight(0, 2, 1.0)
        assert not graph.has_edge(0, 2)

    def test_delta_replay_on_weighted_graph(self):
        graph = WeightedGraph()
        graph.add_edge(0, 1, 2.0)
        graph.add_edge(1, 2, 3.0)
        delta = GraphDelta(
            inserts=((0, 2),), deletes=((0, 1),), reweights=((1, 2, 7.0),)
        )
        delta.apply_to_weighted(graph)
        assert graph.weight(0, 2) == 1.0  # inserts lift to uniform weight
        assert graph.weight(1, 2) == 7.0
        assert not graph.has_edge(0, 1)

    def test_reweight_needs_a_weighted_graph(self):
        graph = Graph(edges=[(0, 1)])
        delta = GraphDelta(reweights=((0, 1, 2.0),))
        with pytest.raises(DeltaError, match="weighted"):
            delta.apply_to_graph(graph)
        with pytest.raises(DeltaError, match="weighted"):
            delta.apply_to_csr(CSRGraph.from_graph(graph))


# ----------------------------------------------------------------------
# Replay equivalence and all-or-nothing semantics across backends
# ----------------------------------------------------------------------
class TestDeltaReplayBackends:
    def test_dict_and_csr_replays_agree(self):
        rng = random.Random(101)
        graph = random_connected_graph(40, 0.12, seed=7)
        csr = CSRGraph.from_graph(graph)
        for _ in range(5):
            delta = delta_for(graph, rng)
            csr = delta.apply_to_csr(csr)
            delta.apply_to_graph(graph)
            assert index_digest_of(graph) == index_digest_of(csr=csr)
        # New endpoints were appended in one canonical order on both sides.
        assert list(csr.node_of) == list(graph.nodes())

    def test_new_nodes_get_identical_numbering_on_both_backends(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        csr = CSRGraph.from_graph(graph)
        delta = GraphDelta(inserts=((9, 2), (0, 7)))
        csr = delta.apply_to_csr(csr)
        delta.apply_to_graph(graph)
        assert list(csr.node_of) == list(graph.nodes())

    def test_all_or_nothing_on_every_backend(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        csr = CSRGraph.from_graph(graph)
        bad = GraphDelta(inserts=((0, 2),), deletes=((5, 6),))
        before = index_digest_of(graph)
        with pytest.raises(DeltaError, match="missing edge"):
            bad.apply_to_graph(graph)
        with pytest.raises(DeltaError, match="missing edge"):
            bad.apply_to_csr(csr)
        assert index_digest_of(graph) == before
        assert index_digest_of(csr=csr) == before
        assert not graph.has_edge(0, 2)
        assert not csr_has_edge(csr, 0, 2)

    def test_insert_existing_and_delete_missing_are_rejected(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(DeltaError, match="existing edge"):
            GraphDelta(inserts=((1, 0),)).apply_to_graph(graph)
        with pytest.raises(DeltaError, match="missing edge"):
            GraphDelta(deletes=((0, 2),)).apply_to_graph(graph)


# ----------------------------------------------------------------------
# VersionedIndex: epochs, catch-up history, alignment
# ----------------------------------------------------------------------
class TestVersionedIndex:
    def test_epochs_count_and_digest_tracks_the_graph(self):
        graph = random_connected_graph(25, 0.2, seed=3)
        index = VersionedIndex(graph.copy())
        assert index.epoch == 0
        rng = random.Random(5)
        deltas = [delta_for(index.graph, rng) for _ in range(1)]
        assert index.apply(deltas[0]) == 1
        # The digest is the mutated graph's digest, not the seed's.
        reference = graph.copy()
        deltas[0].apply_to_graph(reference)
        assert index.index_digest() == index_digest_of(reference)
        assert index.index_digest() != index_digest_of(graph)

    def test_graph_and_csr_views_describe_one_epoch(self):
        graph = random_connected_graph(25, 0.2, seed=9)
        index = VersionedIndex(graph.copy())
        assert not index.csr_built
        _ = index.csr  # force the lazy build, then mutate
        rng = random.Random(6)
        index.apply(delta_for(index.graph, rng))
        assert index_digest_of(index.graph) == index_digest_of(csr=index.csr)

    def test_apply_is_all_or_nothing(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        index = VersionedIndex(graph)
        _ = index.csr
        bad = GraphDelta(inserts=((0, 2),), deletes=((7, 8),))
        with pytest.raises(DeltaError):
            index.apply(bad)
        assert index.epoch == 0
        assert not graph.has_edge(0, 2)
        assert not csr_has_edge(index.csr, 0, 2)
        with pytest.raises(DeltaError, match="takes a GraphDelta"):
            index.apply({"insert": [[0, 2]]})

    def test_deltas_since_semantics(self):
        graph = random_connected_graph(25, 0.2, seed=11)
        index = VersionedIndex(graph.copy())
        rng = random.Random(12)
        applied = []
        for _ in range(3):
            delta = delta_for(index.graph, rng)
            index.apply(delta)
            applied.append(delta)
        assert index.deltas_since(3) == ()  # up-to-date peer
        assert index.deltas_since(1) == tuple(applied[1:])  # oldest first
        assert index.deltas_since(0) == tuple(applied)
        assert index.deltas_since(4) is None  # peer is ahead: diverged
        behind = VersionedIndex(graph.copy(), epoch=5)
        assert behind.deltas_since(3) is None  # before the retained window

    def test_align_renumbers_without_touching_content(self):
        graph = random_connected_graph(25, 0.2, seed=13)
        index = VersionedIndex(graph.copy())
        digest = index.index_digest()
        index.align(7)
        assert index.epoch == 7
        assert index.index_digest() == digest
        assert index.deltas_since(7) == ()

    def test_arrays_only_index_mutates_without_a_graph(self):
        graph = random_connected_graph(25, 0.2, seed=17)
        index = VersionedIndex(csr=CSRGraph.from_graph(graph))
        rng = random.Random(18)
        delta = delta_for(graph, rng)
        index.apply(delta)
        delta.apply_to_graph(graph)
        assert index.index_digest() == index_digest_of(graph)
        with pytest.raises(GraphError):
            VersionedIndex()


# ----------------------------------------------------------------------
# index_digest properties under mutation (dict vs CSR, cross-process)
# ----------------------------------------------------------------------
class TestIndexDigestProperties:
    def test_any_single_op_changes_the_digest(self):
        rng = random.Random(23)
        graph = random_connected_graph(30, 0.15, seed=23)
        baseline = index_digest_of(graph)
        edges = sorted(graph.edges(), key=repr)
        nodes = sorted(graph.nodes())
        for _ in range(10):
            probe = graph.copy()
            if rng.random() < 0.5:
                u, v = edges[rng.randrange(len(edges))]
                GraphDelta(deletes=((u, v),)).apply_to_graph(probe)
            else:
                while True:
                    u, v = rng.sample(nodes, 2)
                    if not graph.has_edge(u, v):
                        break
                GraphDelta(inserts=((u, v),)).apply_to_graph(probe)
            assert index_digest_of(probe) != baseline

    def test_digest_agrees_across_backends_under_mutation(self):
        rng = random.Random(29)
        dict_service = ConnectorService(random_connected_graph(30, 0.15, 29))
        csr_service = ConnectorService(
            random_connected_graph(30, 0.15, 29),
            SolveOptions(backend="csr"),
        )
        assert dict_service.index_digest() == csr_service.index_digest()
        for _ in range(3):
            delta = delta_for(dict_service.graph, rng)
            dict_service.apply_delta(delta)
            csr_service.apply_delta(delta)
            assert dict_service.index_digest() == csr_service.index_digest()

    def test_digest_is_stable_across_processes(self):
        graph = random_connected_graph(20, 0.2, seed=31)
        delta = GraphDelta(deletes=(sorted(graph.edges(), key=repr)[0],))
        service = ConnectorService(graph)
        service.apply_delta(delta)
        script = (
            "import random\n"
            "from helpers import random_connected_graph\n"
            "from repro.core.service import ConnectorService\n"
            "from repro.core.versioned import GraphDelta\n"
            "graph = random_connected_graph(20, 0.2, seed=31)\n"
            "delta = GraphDelta(deletes=(sorted(graph.edges(), key=repr)[0],))\n"
            "service = ConnectorService(graph)\n"
            "service.apply_delta(delta)\n"
            "print(service.index_digest(), delta.digest())\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=None,
            env=_hash_randomized_env(),
            check=True,
        )
        remote_index, remote_delta = completed.stdout.split()
        assert remote_index == service.index_digest()
        assert remote_delta == delta.digest()


def _hash_randomized_env():
    import os

    env = dict(os.environ)
    tests = os.path.dirname(os.path.abspath(__file__))
    src = os.path.join(os.path.dirname(tests), "src")
    env["PYTHONPATH"] = os.pathsep.join([src, tests])
    env["PYTHONHASHSEED"] = "random"
    return env


# ----------------------------------------------------------------------
# ConnectorService.apply_delta: scoped invalidation + the identity contract
# ----------------------------------------------------------------------
class TestServiceApplyDelta:
    def test_warm_answers_match_cold_solves_after_deltas(self):
        rng = random.Random(41)
        graph = random_connected_graph(40, 0.12, seed=41)
        reference = graph.copy()
        service = ConnectorService(graph)
        queries = random_query_batch(graph, rng, 8)
        for query in queries:
            service.solve(query)  # warm every cache layer
        for round_no in range(3):
            delta = delta_for(reference, rng)
            epoch = service.apply_delta(delta)
            assert epoch == round_no + 1
            delta.apply_to_graph(reference)
            for query in queries:
                assert_connector_identical(
                    service.solve(query), wiener_steiner(reference, query)
                )
        stats = service.stats()
        assert stats.epoch == 3
        assert stats.entries_invalidated > 0
        assert stats.entries_retained > 0

    def test_inapplicable_delta_leaves_the_service_untouched(self):
        graph = random_connected_graph(30, 0.15, seed=43)
        service = ConnectorService(graph)
        query = sorted(graph.nodes())[:3]
        before = service.solve(query)
        digest = service.index_digest()
        with pytest.raises(DeltaError):
            service.apply_delta(GraphDelta(deletes=(("no", "such"),)))
        with pytest.raises(DeltaError, match="takes a GraphDelta"):
            service.apply_delta({"delete": [[0, 1]]})
        assert service.epoch == 0
        assert service.index_digest() == digest
        assert_connector_identical(service.solve(query), before)

    def test_dict_and_csr_services_stay_bit_identical_under_mutation(self):
        rng = random.Random(47)
        graph = random_connected_graph(40, 0.12, seed=47)
        dict_service = ConnectorService(graph.copy())
        csr_service = ConnectorService(graph.copy(), SolveOptions(backend="csr"))
        queries = random_query_batch(graph, rng, 6)
        reference = graph.copy()
        for _ in range(2):
            delta = delta_for(reference, rng)
            dict_service.apply_delta(delta)
            csr_service.apply_delta(delta)
            delta.apply_to_graph(reference)
            for query in queries:
                cold = wiener_steiner(reference, query)
                assert_connector_identical(dict_service.solve(query), cold)
                assert_connector_identical(csr_service.solve(query), cold)

    def test_mutating_a_submitted_graph_does_not_corrupt_answers(self):
        # The defensive-copy regression: the service owns a private copy,
        # so callers mutating their graph afterwards (without going
        # through apply_delta) change nothing the service serves.
        graph = random_connected_graph(30, 0.15, seed=53)
        pristine = graph.copy()
        service = ConnectorService(graph)
        query = sorted(graph.nodes())[:4]
        before = service.solve(query)
        digest = service.index_digest()
        for u, v in list(graph.edges())[:5]:
            graph.remove_edge(u, v)
        graph.add_edge("rogue", sorted(pristine.nodes())[0])
        assert service.index_digest() == digest
        assert_connector_identical(service.solve(query), before)
        assert_connector_identical(
            service.solve(query), wiener_steiner(pristine, query)
        )

    def test_scoped_invalidation_retains_and_reuses_warm_entries(self):
        rng = random.Random(59)
        graph = random_connected_graph(60, 0.08, seed=59)
        service = ConnectorService(graph)
        queries = random_query_batch(graph, rng, 12)
        for query in queries:
            service.solve(query)
        before = service.stats()
        assert before.score_cache_size > 0 and before.cached_roots > 0
        delta = delta_for(graph, rng, ops=1)
        service.apply_delta(delta)
        stats = service.stats()
        # The expensive layers survive a small delta: most score entries
        # (pure functions of G[S], untouched unless the delta lands inside
        # S) and a positive number of root-BFS trees.
        assert stats.entries_retained >= before.score_cache_size // 2
        assert stats.score_cache_size > 0
        assert stats.entries_invalidated > 0  # candidates/results evicted
        # Retained entries are *reused*, not just counted: re-serving the
        # warm workload scores its candidate sets from cache.
        for query in queries:
            service.solve(query)
        assert service.stats().score_hits > before.score_hits


# ----------------------------------------------------------------------
# Tentpole fuzz: epoch identity through the whole serving tower
# ----------------------------------------------------------------------
#: Every valid (slots, replication) point of the required fuzz grid.
RING_SHAPES = [(1, 1), (2, 1), (2, 2), (5, 1), (5, 2)]


def _ring_params():
    params = []
    for transport in ("pipe", "socket", "mixed"):
        for slots, replication in RING_SHAPES:
            if transport == "mixed" and slots < 2:
                continue  # a one-slot ring cannot mix transports
            params.append((transport, slots, replication))
    return params


class TestShardedEpochIdentity:
    @pytest.mark.parametrize("transport,slots,replication", _ring_params())
    def test_interleaved_solves_and_mutates_stay_bit_identical(
        self, transport, slots, replication
    ):
        rng = random.Random(1000 * slots + 10 * replication)
        graph = random_connected_graph(36, 0.12, seed=slots * 7 + replication)
        reference = graph.copy()

        remote_count = {
            "pipe": 0, "socket": slots, "mixed": slots // 2
        }[transport]
        with shard_hosts(graph, remote_count) as addresses:
            shards = addresses + ["local"] * (slots - remote_count)
            service = ShardedConnectorService(
                graph,
                shards=shards,
                replication=replication,
                backoff=FAST_BACKOFF,
                heartbeat_interval=None,
            )
            try:
                for round_no in range(3):
                    queries = random_query_batch(graph, rng, 4)
                    for result, query in zip(
                        service.solve_many(queries), queries
                    ):
                        assert_connector_identical(
                            result, wiener_steiner(reference, query)
                        )
                    delta = delta_for(reference, rng, ops=2)
                    epoch = service.apply_delta(delta)
                    assert epoch == round_no + 1
                    delta.apply_to_graph(reference)
                    stats = service.stats()
                    assert stats.epoch == epoch
                    for shard in stats.shards:
                        assert shard.epoch == epoch
                # One last warm pass at the final epoch.
                queries = random_query_batch(graph, rng, 4)
                for result, query in zip(service.solve_many(queries), queries):
                    assert_connector_identical(
                        result, wiener_steiner(reference, query)
                    )
            finally:
                service.close()
        assert_no_orphan_processes()

    def test_pipe_replica_killed_before_mutate_revives_at_the_new_epoch(self):
        graph = random_connected_graph(36, 0.12, seed=61)
        reference = graph.copy()
        rng = random.Random(62)
        service = ShardedConnectorService(
            graph,
            shards=["local", "local"],
            replication=2,
            backoff=FAST_BACKOFF,
            heartbeat_interval=None,
        )
        try:
            service.solve_many(random_query_batch(graph, rng, 4))
            victim = service._shards[0]
            victim.process.terminate()
            victim.process.join(timeout=10)
            delta = delta_for(reference, rng)
            assert service.apply_delta(delta) == 1
            delta.apply_to_graph(reference)
            deadline = time.monotonic() + 30
            while service.stats().dead_shards and time.monotonic() < deadline:
                service.solve_many(random_query_batch(graph, rng, 2))
                time.sleep(0.05)
            stats = service.stats()
            assert not stats.dead_shards  # the slot revived...
            assert stats.reconnects >= 1
            assert stats.epoch == 1  # ...at the mutated epoch
            for shard in stats.shards:
                assert shard.epoch == 1
            queries = random_query_batch(graph, rng, 6)
            for result, query in zip(service.solve_many(queries), queries):
                assert_connector_identical(
                    result, wiener_steiner(reference, query)
                )
        finally:
            service.close()
        assert_no_orphan_processes()


# ----------------------------------------------------------------------
# Epoch mismatch is a typed refusal, never a stale answer
# ----------------------------------------------------------------------
class TestEpochMismatchTyping:
    def test_version_skewed_sweep_raises_shard_link_error(self):
        graph = random_connected_graph(24, 0.18, seed=67)
        service = ConnectorService(graph)
        with ShardHostServer(service) as host:
            transport = RemoteShardTransport(
                0, "127.0.0.1", host.port,
                digest=service.index_digest(), epoch=0,
            )
            try:
                query = tuple(sorted(graph.nodes())[:3])
                transport.submit(1, query, SolveOptions(), epoch=3)
                deadline = time.monotonic() + 10
                with pytest.raises(ShardLinkError, match="epoch"):
                    while time.monotonic() < deadline:
                        if transport.drain():
                            raise AssertionError(
                                "stale sweep was answered instead of refused"
                            )
                        time.sleep(0.01)
            finally:
                transport.stop()

    def test_catchup_heals_a_behind_daemon_and_refuses_a_diverged_one(self):
        graph = random_connected_graph(24, 0.18, seed=71)
        rng = random.Random(72)
        router = ConnectorService(graph.copy())
        for _ in range(2):
            router.apply_delta(delta_for(router.graph, rng))
        # A daemon that is simply *behind* (epoch 0, seed graph) heals:
        # the connect-time handshake replays the two missed deltas.
        stale_service = ConnectorService(graph.copy())
        with ShardHostServer(stale_service) as stale_host:
            transport = RemoteShardTransport(
                0, "127.0.0.1", stale_host.port,
                digest=router.index_digest,
                epoch=lambda: router.epoch,
                catchup=router.deltas_since,
            )
            try:
                assert stale_service.epoch == router.epoch == 2
                assert stale_service.index_digest() == router.index_digest()
            finally:
                transport.stop()
        # A daemon over a *different* graph is refused, not "caught up".
        other = random_connected_graph(24, 0.18, seed=99)
        with ShardHostServer(ConnectorService(other)) as diverged_host:
            from repro.core.sharded import ShardConnectError

            with pytest.raises(ShardConnectError):
                RemoteShardTransport(
                    0, "127.0.0.1", diverged_host.port,
                    digest=router.index_digest,
                    epoch=lambda: router.epoch,
                    catchup=router.deltas_since,
                )


# ----------------------------------------------------------------------
# Gateway + TCP server: amutate drains windows, mutate op is pure JSON
# ----------------------------------------------------------------------
class TestGatewayMutation:
    def test_amutate_and_post_mutate_solves_are_identical(self):
        graph = random_connected_graph(30, 0.15, seed=73)
        reference = graph.copy()
        rng = random.Random(74)
        queries = random_query_batch(graph, rng, 5)
        delta = delta_for(graph, rng)

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service, max_batch=8, max_wait_ms=2.0)
            try:
                before = await asyncio.gather(
                    *(gateway.asolve(query) for query in queries)
                )
                epoch = await gateway.amutate(delta)
                after = await asyncio.gather(
                    *(gateway.asolve(query) for query in queries)
                )
                return before, epoch, after
            finally:
                await gateway.aclose()

        before, epoch, after = run(scenario())
        assert epoch == 1
        for result, query in zip(before, queries):
            assert_connector_identical(result, wiener_steiner(reference, query))
        delta.apply_to_graph(reference)
        for result, query in zip(after, queries):
            assert_connector_identical(result, wiener_steiner(reference, query))

    def test_mutate_op_over_tcp_is_pure_json_and_validated(self):
        graph = random_connected_graph(30, 0.15, seed=79)
        reference = graph.copy()
        rng = random.Random(80)
        query = sorted(graph.nodes())[:4]
        delta = delta_for(graph, rng)

        async def scenario():
            service = ConnectorService(graph)
            gateway = AsyncGateway(service, max_batch=8, max_wait_ms=2.0)
            try:
                async with GatewayServer(gateway, port=0) as server:
                    client = await AsyncConnectorClient.connect(
                        port=server.port
                    )
                    async with client:
                        with pytest.raises(ServerError) as bad:
                            await client.mutate({"bogus-key": []})
                        epoch = await client.mutate(delta.to_payload())
                        document = await client.solve(query)
                        stats = await client.stats()
                return bad.value, epoch, document, stats
            finally:
                await gateway.aclose()

        bad, epoch, document, stats = run(scenario())
        assert "bogus-key" in str(bad)
        assert epoch == 1
        assert stats["service"]["epoch"] == 1
        delta.apply_to_graph(reference)
        cold = wiener_steiner(reference, query)
        assert document["nodes"] == sorted(cold.nodes)
        assert document["metadata"]["root"] == cold.metadata["root"]
        assert document["metadata"]["lambda"] == cold.metadata["lambda"]


# ----------------------------------------------------------------------
# Chaos: a replica killed around a mutate heals via catch-up deltas
# ----------------------------------------------------------------------
class TestMutationChaos:
    def test_killed_remote_replica_heals_to_the_ring_epoch_via_catchup(self):
        from repro.datasets import load_dataset

        graph = load_dataset("football")
        reference = graph.copy()
        rng = random.Random(83)
        process, port = spawn_shard_host("football")
        service = None
        respawned = None
        try:
            service = ShardedConnectorService(
                graph,
                shards=[f"127.0.0.1:{port}", "local"],
                replication=2,
                backoff=FAST_BACKOFF,
                heartbeat_interval=None,
            )
            service.solve_many(random_query_batch(graph, rng, 3))
            # Kill the remote replica, then mutate while it is down: the
            # scatter marks the slot dead and the ring advances without it.
            process.terminate()
            process.communicate(timeout=10)
            delta = delta_for(reference, rng)
            assert service.apply_delta(delta) == 1
            delta.apply_to_graph(reference)
            queries = random_query_batch(graph, rng, 3)
            for result, query in zip(service.solve_many(queries), queries):
                assert_connector_identical(
                    result, wiener_steiner(reference, query)
                )
            # Revive a cold daemon at the same address: it wakes at epoch
            # 0 with the seed graph, and reconnect must bridge the gap by
            # replaying the catch-up suffix, not accept a stale replica.
            respawned, _ = spawn_shard_host("football", port=port)
            deadline = time.monotonic() + 60
            while service.stats().dead_shards and time.monotonic() < deadline:
                service.solve_many(random_query_batch(graph, rng, 2))
                time.sleep(0.1)
            stats = service.stats()
            assert not stats.dead_shards
            assert stats.reconnects >= 1
            assert stats.epoch == 1
            for shard in stats.shards:
                assert shard.epoch == 1  # the healed daemon adopted epoch 1
            queries = random_query_batch(graph, rng, 6)
            for result, query in zip(service.solve_many(queries), queries):
                assert_connector_identical(
                    result, wiener_steiner(reference, query)
                )
        finally:
            if service is not None:
                service.close()
            for child in (process, respawned):
                if child is not None and child.poll() is None:
                    child.kill()
                    child.communicate()
        assert_no_orphan_processes()
