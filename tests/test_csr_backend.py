"""Property tests for the CSR array backend.

The contract under test is strong: the CSR kernels must return results
*identical* to the dict reference implementations — identical distances,
identical canonical BFS/Voronoi trees, identical Steiner trees, and
identical ``wiener_steiner`` connectors — on random corpora, not merely
results of equal quality.
"""

import math
import random

import pytest

from helpers import random_connected_graph, random_weighted_graph
from repro.core.fastpath import (
    mehlhorn_steiner_csr,
    voronoi_dijkstra_csr,
)
from repro.core.steiner import (
    canonical_forest_from_distances,
    dijkstra_distances_canonical,
    mehlhorn_steiner_tree,
    tree_total_weight,
    voronoi_dijkstra_canonical,
)
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.csr import HAS_NUMPY, CSRGraph, order_map
from repro.graphs.generators import connectify, erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_tree_canonical,
    dijkstra,
    multi_source_bfs,
)
from repro.graphs.wiener import rooted_distance_sum, wiener_index

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="CSR backend needs numpy")


class TestCSRStructure:
    @pytest.mark.parametrize("seed", range(4))
    def test_round_trip(self, seed):
        g = random_connected_graph(50, 0.1, seed + 9000)
        csr = CSRGraph.from_graph(g)
        assert csr.num_nodes == g.num_nodes
        assert csr.num_edges == g.num_edges
        for node in g.nodes():
            idx = csr.index_of[node]
            row = csr.indices[csr.indptr[idx] : csr.indptr[idx + 1]]
            assert {csr.node_of[int(j)] for j in row} == g.neighbors(node)
            assert list(row) == sorted(row)  # canonical adjacency order

    def test_order_matches_order_map(self):
        g = random_connected_graph(30, 0.15, 9100)
        csr = CSRGraph.from_graph(g)
        assert csr.index_of == order_map(g)

    def test_induced_matches_subgraph(self):
        g = random_connected_graph(60, 0.1, 9200)
        nodes = sorted(g.nodes())[:25]
        csr = CSRGraph.from_graph(g)
        sub = csr.induced(csr.indices_for(nodes))
        expected = g.subgraph(nodes)
        assert sub.num_nodes == expected.num_nodes
        assert sub.num_edges == expected.num_edges
        assert sub.wiener_index() == wiener_index(expected)


class TestTraversalEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_bfs_distances_identical(self, seed):
        g = random_connected_graph(70, 0.07, seed + 9300)
        csr = CSRGraph.from_graph(g)
        source = sorted(g.nodes())[seed % g.num_nodes]
        expected = bfs_distances(g, source)
        dist = csr.bfs_distances(csr.index_of[source])
        assert {csr.node_of[i]: int(d) for i, d in enumerate(dist)} == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_bfs_tree_parents_are_canonical(self, seed):
        g = random_connected_graph(60, 0.08, seed + 9400)
        csr = CSRGraph.from_graph(g)
        source = sorted(g.nodes())[0]
        expected_dist, expected_parents = bfs_tree_canonical(g, source)
        dist, parent = csr.bfs_tree(csr.index_of[source])
        for node, expected_parent in expected_parents.items():
            assert csr.node_of[int(parent[csr.index_of[node]])] == expected_parent
        for node, d in expected_dist.items():
            assert int(dist[csr.index_of[node]]) == d

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_source_bfs_distances(self, seed):
        g = random_connected_graph(60, 0.08, seed + 9500)
        csr = CSRGraph.from_graph(g)
        sources = sorted(g.nodes())[: 3 + seed]
        expected, _ = multi_source_bfs(g, sources)
        dist, closest = csr.multi_source_bfs([csr.index_of[s] for s in sources])
        for node, d in expected.items():
            idx = csr.index_of[node]
            assert int(dist[idx]) == d
            # the claimed source must actually realize the distance
            source = csr.node_of[int(closest[idx])]
            assert bfs_distances(g, source)[node] == d

    @pytest.mark.parametrize("seed", range(5))
    def test_wiener_and_rooted_sum(self, seed):
        g = random_connected_graph(50, 0.1, seed + 9600)
        csr = CSRGraph.from_graph(g)
        # dict reference, computed below the CSR dispatch threshold
        n = g.num_nodes
        total = sum(sum(bfs_distances(g, v).values()) for v in g.nodes())
        assert csr.wiener_index() == total / 2
        assert wiener_index(g) == total / 2
        root = sorted(g.nodes())[0]
        assert rooted_distance_sum(g, root, csr=csr) == rooted_distance_sum(g, root)

    def test_wiener_disconnected_infinite(self):
        g = Graph([(0, 1)], nodes=[2])
        csr = CSRGraph.from_graph(g)
        assert csr.wiener_index() == math.inf


class TestDijkstraInlineParents:
    """Satellite: dijkstra tracks parents in the heap loop, no second pass."""

    @pytest.mark.parametrize("seed", range(5))
    def test_parents_form_shortest_path_tree(self, seed):
        g = random_weighted_graph(25, 90, seed + 9700)
        source = next(iter(g.nodes()))
        distances, parents = dijkstra(g, source)
        assert source not in parents
        for node, parent in parents.items():
            assert distances[parent] + g.weight(parent, node) == pytest.approx(
                distances[node]
            )
        # every settled node except the source has a parent
        assert set(parents) == set(distances) - {source}


class TestSteinerEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_voronoi_dijkstra_identical(self, seed):
        wg = random_weighted_graph(30, 110, seed + 9800)
        order = order_map(wg)
        node_of = list(wg.nodes())
        rng = random.Random(seed)
        sources = rng.sample(node_of, 4)
        expected = voronoi_dijkstra_canonical(wg, sources, order, node_of)
        csr, weights = CSRGraph.from_weighted_graph(wg)
        actual = voronoi_dijkstra_csr(
            csr.indptr.tolist(),
            csr.indices.tolist(),
            weights.tolist(),
            csr.num_nodes,
            [order[s] for s in sources],
        )
        assert actual == tuple(expected) or list(actual) == list(expected)
        # distance-only variant agrees too
        assert (
            dijkstra_distances_canonical(wg, sources, order, node_of)
            == expected[0]
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_canonical_forest_consistent(self, seed):
        wg = random_weighted_graph(30, 110, seed + 9900)
        order = order_map(wg)
        node_of = list(wg.nodes())
        rng = random.Random(seed)
        sources = rng.sample(node_of, 3)
        terminal_indices = sorted(order[s] for s in sources)
        dist = dijkstra_distances_canonical(wg, sources, order, node_of)
        parent, closest = canonical_forest_from_distances(
            wg, dist, order, node_of, terminal_indices
        )
        for v_idx, p_idx in enumerate(parent):
            if p_idx < 0:
                continue
            w = wg.weight(node_of[p_idx], node_of[v_idx])
            assert dist[p_idx] + w == dist[v_idx]
            assert closest[v_idx] == closest[p_idx]
        for t_idx in terminal_indices:
            assert closest[t_idx] == t_idx

    @pytest.mark.parametrize("seed", range(10))
    def test_mehlhorn_csr_matches_dict(self, seed):
        wg = random_weighted_graph(28, 100, seed + 10000)
        rng = random.Random(seed)
        terminals = rng.sample(sorted(wg.nodes()), 5)
        try:
            tree = mehlhorn_steiner_tree(wg, terminals)
        except Exception:
            pytest.skip("terminals disconnected in this sample")
        csr, weights = CSRGraph.from_weighted_graph(wg)
        nodes, edges = mehlhorn_steiner_csr(
            csr, weights, [csr.index_of[t] for t in terminals]
        )
        assert {csr.node_of[i] for i in nodes} == set(tree.nodes())
        total = sum(
            weights[csr.arc_weight_position(a, b)] for a, b in edges
        )
        assert total == tree_total_weight(tree)


class TestBackendEquality:
    """The headline acceptance property: identical connectors."""

    @pytest.mark.parametrize("seed", range(12))
    def test_connectors_identical(self, seed):
        rng = random.Random(seed)
        n = rng.randint(12, 90)
        g = connectify(erdos_renyi(n, rng.uniform(0.05, 0.3), rng=rng), rng=rng)
        k = min(rng.randint(2, 6), g.num_nodes)
        query = rng.sample(sorted(g.nodes()), k)
        a = wiener_steiner(g, query, backend="dict")
        b = wiener_steiner(g, query, backend="csr")
        assert a.nodes == b.nodes
        assert a.wiener_index == b.wiener_index
        assert a.metadata["backend"] == "dict"
        assert b.metadata["backend"] == "csr"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"adjust": False},
            {"selection": "a"},
            {"selection": "wiener"},
            {"beta": 0.5},
            {"lambda_values": [1.0, 2.5]},
        ],
    )
    def test_connectors_identical_across_knobs(self, kwargs):
        for seed in range(4):
            g = random_connected_graph(45, 0.1, seed + 10100)
            rng = random.Random(seed)
            query = rng.sample(sorted(g.nodes()), 4)
            a = wiener_steiner(g, query, backend="dict", **kwargs)
            b = wiener_steiner(g, query, backend="csr", **kwargs)
            assert a.nodes == b.nodes, (seed, kwargs)

    def test_custom_roots_identical(self):
        g = random_connected_graph(40, 0.12, 10200)
        query = sorted(g.nodes())[:3]
        roots = sorted(g.nodes())[:8]
        a = wiener_steiner(g, query, roots=roots, backend="dict")
        b = wiener_steiner(g, query, roots=roots, backend="csr")
        assert a.nodes == b.nodes

    def test_disconnected_host_identical(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 4), (10, 11), (11, 12)])
        a = wiener_steiner(g, [0, 4], backend="dict")
        b = wiener_steiner(g, [0, 4], backend="csr")
        assert a.nodes == b.nodes == frozenset(range(5))

    def test_auto_backend_picks_csr_on_large_graphs(self):
        g = random_connected_graph(200, 0.03, 10300)
        query = sorted(g.nodes())[:3]
        result = wiener_steiner(g, query)
        assert result.metadata["backend"] == "csr"

    def test_unknown_backend_raises(self, path5):
        with pytest.raises(ValueError):
            wiener_steiner(path5, [0, 4], backend="bogus")
