"""Tests for the Section-3 exact algorithms."""

import random

import pytest

from helpers import random_connected_graph
from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.core.exact import (
    brute_force,
    exact_pair,
    exact_pivot,
    optimal_wiener_index,
)
from repro.graphs.components import nodes_connect
from repro.graphs.generators import figure2_gadget, path_graph, star_graph
from repro.graphs.graph import Graph


class TestExactPair:
    def test_path_endpoints(self):
        g = path_graph(6)
        result = exact_pair(g, [0, 5])
        assert result.nodes == frozenset(range(6))
        assert result.wiener_index == 6 * 35 / 6

    def test_adjacent_pair(self, triangle):
        result = exact_pair(triangle, [0, 1])
        assert result.nodes == frozenset([0, 1])
        assert result.wiener_index == 1.0

    def test_wrong_arity(self, triangle):
        with pytest.raises(InvalidQueryError):
            exact_pair(triangle, [0])
        with pytest.raises(InvalidQueryError):
            exact_pair(triangle, [0, 1, 2])

    def test_disconnected(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            exact_pair(g, [0, 3])

    def test_pair_is_optimal(self):
        """|Q|=2: a shortest path matches full brute force (Section 3)."""
        for seed in range(5):
            g = random_connected_graph(12, 0.25, seed + 700)
            rng = random.Random(seed)
            q = rng.sample(sorted(g.nodes()), 2)
            path_value = exact_pair(g, q).wiener_index
            brute_value = brute_force(g, q, max_candidates=12).wiener_index
            assert path_value == brute_value


class TestBruteForce:
    def test_star_adds_hub(self):
        g = star_graph(5)
        result = brute_force(g, [1, 2, 3])
        assert result.nodes == frozenset([0, 1, 2, 3])

    def test_figure2_optimum(self):
        g = figure2_gadget(10)
        result = brute_force(g, list(range(1, 11)), candidates=["r1", "r2"])
        assert result.wiener_index == 142
        assert result.nodes >= {"r1", "r2"}

    def test_candidate_pool_restriction(self):
        g = star_graph(5)
        # Without the hub in the pool, the query alone is infeasible ->
        # but Q={1,2} plus nothing can't connect; pool empty -> error.
        with pytest.raises(DisconnectedGraphError):
            brute_force(g, [1, 2], candidates=[3])

    def test_pool_size_guard(self):
        g = random_connected_graph(40, 0.1, 1)
        with pytest.raises(InvalidQueryError):
            brute_force(g, sorted(g.nodes())[:2], max_candidates=10)

    def test_empty_query(self, triangle):
        with pytest.raises(InvalidQueryError):
            brute_force(triangle, [])

    def test_metadata(self, triangle):
        result = brute_force(triangle, [0, 1])
        assert result.metadata["strategy"] == "brute-force"
        assert result.metadata["subsets_examined"] >= 1

    def test_optimal_wiener_index_helper(self, triangle):
        assert optimal_wiener_index(triangle, [0, 1]) == 1.0


class TestExactPivot:
    @pytest.mark.parametrize("seed", range(5))
    def test_full_budget_matches_brute_force(self, seed):
        """With budget covering all non-query vertices, G[A] enumeration
        makes the pivot search exactly as strong as brute force."""
        g = random_connected_graph(11, 0.25, seed + 710)
        rng = random.Random(seed)
        q = rng.sample(sorted(g.nodes()), 3)
        brute = brute_force(g, q, max_candidates=11).wiener_index
        pivot = exact_pivot(g, q, pivot_budget=g.num_nodes - 3).wiener_index
        assert pivot == brute

    @pytest.mark.parametrize("seed", range(5))
    def test_small_budget_upper_bounds_optimum(self, seed):
        g = random_connected_graph(12, 0.25, seed + 720)
        rng = random.Random(seed)
        q = rng.sample(sorted(g.nodes()), 3)
        brute = brute_force(g, q, max_candidates=12).wiener_index
        pivot = exact_pivot(g, q, pivot_budget=2).wiener_index
        assert pivot >= brute  # restricted search can never beat the optimum

    def test_budget_zero_just_connects_query(self):
        g = path_graph(5)
        result = exact_pivot(g, [0, 4], pivot_budget=0)
        assert result.nodes == frozenset(range(5))

    def test_solution_is_connector(self):
        g = random_connected_graph(15, 0.2, 3)
        q = sorted(g.nodes())[:3]
        result = exact_pivot(g, q, pivot_budget=1)
        assert nodes_connect(g, result.nodes)
        assert set(q) <= set(result.nodes)

    def test_empty_query(self, triangle):
        with pytest.raises(InvalidQueryError):
            exact_pivot(triangle, [])

    def test_larger_budget_not_worse(self):
        g = random_connected_graph(12, 0.25, 17)
        q = sorted(g.nodes())[:3]
        small = exact_pivot(g, q, pivot_budget=0).wiener_index
        large = exact_pivot(g, q, pivot_budget=2).wiener_index
        assert large <= small + 1e-9
