"""Shared fixtures for the test suite.

networkx appears in the oracle helpers (``tests/helpers.py``) and only
there as an independent oracle for cross-checking our graph algorithms;
the library itself never imports it.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs.graph import Graph


@pytest.fixture
def triangle() -> Graph:
    """The 3-cycle."""
    return Graph([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def path5() -> Graph:
    """A path on 5 nodes: 0-1-2-3-4."""
    return Graph([(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def star() -> Graph:
    """A star: hub 0, leaves 1..5."""
    return Graph([(0, leaf) for leaf in range(1, 6)])


@pytest.fixture
def two_triangles_bridge() -> Graph:
    """Two triangles joined by a bridge: {0,1,2} - 2-3 - {3,4,5}."""
    return Graph([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20150531)  # SIGMOD'15 started May 31
