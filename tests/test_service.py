"""Property tests for the ConnectorService serving layer.

The contract under test is the identity contract of
:mod:`repro.core.service`: ``ConnectorService.solve`` / ``solve_many`` —
sequential or parallel, cold or warm caches, before and after LRU
eviction — must return connectors *identical* to the one-shot
``wiener_steiner`` on random corpora, while the :class:`SolveOptions` /
:class:`Method` layer must dispatch every method uniformly.
"""

import random

import pytest

from helpers import (
    assert_connector_identical,
    random_connected_graph,
    random_query_batch,
)
from repro.baselines import METHODS, steiner_connector
from repro.core.options import FunctionMethod, Method, SolveOptions
from repro.core.service import ConnectorService, service_from_payload
from repro.core.wiener_steiner import wiener_steiner
from repro.errors import DisconnectedGraphError, GraphError, InvalidQueryError
from repro.graphs.csr import HAS_NUMPY
from repro.graphs.graph import Graph
from repro.graphs.landmarks import LandmarkIndex
from repro.graphs.traversal import bfs_distances

BACKENDS = ["dict"] + (["csr"] if HAS_NUMPY else [])


class TestSolveOptions:
    def test_defaults(self):
        options = SolveOptions()
        assert options.method == "ws-q"
        assert options.selection == "auto"
        assert options.backend == "auto"

    def test_normalizes_iterables_and_stays_hashable(self):
        options = SolveOptions(roots=[1, 2], lambda_values=[0.5, 2.0])
        assert options.roots == (1, 2)
        assert options.lambda_values == (0.5, 2.0)
        assert hash(options) == hash(SolveOptions(roots=(1, 2),
                                                  lambda_values=(0.5, 2.0)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": 0.0},
            {"beta": -1.0},
            {"selection": "nope"},
            {"backend": "gpu"},
            {"method": ""},
            {"lambda_values": ()},
            {"exact_threshold": -1},
            {"sample_sources": 0},
        ],
    )
    def test_validates_eagerly(self, kwargs):
        with pytest.raises(ValueError):
            SolveOptions(**kwargs)

    def test_replace_revalidates(self):
        options = SolveOptions()
        assert options.replace(beta=0.5).beta == 0.5
        with pytest.raises(ValueError):
            options.replace(selection="bogus")


class TestServiceIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_one_shot_on_random_corpus(self, backend):
        rng = random.Random(101)
        for seed in range(4):
            g = random_connected_graph(rng.randint(28, 64), 0.09, seed)
            service = ConnectorService(g, SolveOptions(backend=backend))
            for query in random_query_batch(g, rng, 3):
                assert_connector_identical(
                    service.solve(query),
                    wiener_steiner(g, query, backend=backend),
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_cache_is_identical_and_hits(self, backend):
        g = random_connected_graph(40, 0.09, 7)
        rng = random.Random(7)
        service = ConnectorService(g, SolveOptions(backend=backend))
        query = rng.sample(sorted(g.nodes()), 4)
        cold = service.solve(query)
        warm = service.solve(query)
        assert warm is cold  # served straight from the result cache
        assert service.stats().result_hits == 1
        assert_connector_identical(warm, wiener_steiner(g, query, backend=backend))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_after_lru_eviction(self, backend):
        """Tiny LRU bounds force constant eviction; answers must not change."""
        g = random_connected_graph(36, 0.1, 13)
        rng = random.Random(13)
        service = ConnectorService(
            g,
            SolveOptions(backend=backend),
            max_cached_roots=1,
            max_cached_candidates=2,
            max_cached_scores=2,
            max_cached_results=1,
        )
        queries = random_query_batch(g, rng, 3)
        for _ in range(2):  # interleave so every cache layer churns
            for query in queries:
                assert_connector_identical(
                    service.solve(query),
                    wiener_steiner(g, query, backend=backend),
                )

    def test_overlapping_queries_reuse_roots(self):
        g = random_connected_graph(48, 0.09, 5)
        hot = sorted(g.nodes())[:6]
        service = ConnectorService(g)
        service.solve(hot[:4])
        before = service.stats()
        service.solve(hot[1:5])  # three shared roots
        after = service.stats()
        assert after.cached_roots <= 6
        assert after.candidate_misses > before.candidate_misses

    def test_solve_many_preserves_order_and_dedups(self):
        g = random_connected_graph(40, 0.09, 3)
        rng = random.Random(3)
        q1, q2 = random_query_batch(g, rng, 2)
        results = ConnectorService(g).solve_many([q1, q2, q1, q1])
        assert [sorted(r.query) for r in results] == [
            sorted(set(q1)), sorted(set(q2)), sorted(set(q1)), sorted(set(q1))
        ]
        assert results[2] is results[0]
        assert_connector_identical(results[0], wiener_steiner(g, q1))
        assert_connector_identical(results[1], wiener_steiner(g, q2))

    def test_single_vertex_query(self, triangle):
        result = ConnectorService(triangle).solve([1])
        assert result.nodes == frozenset([1])

    def test_empty_query_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            ConnectorService(triangle).solve([])

    def test_unknown_vertex_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            ConnectorService(triangle).solve([0, 99])

    def test_empty_roots_raises(self, triangle):
        with pytest.raises(InvalidQueryError):
            ConnectorService(triangle).solve([0, 1], SolveOptions(roots=()))

    def test_needs_graph_or_csr(self):
        with pytest.raises(GraphError):
            ConnectorService()

    @pytest.mark.skipif(not HAS_NUMPY, reason="needs both backends")
    def test_backends_identical_through_service(self):
        g = random_connected_graph(52, 0.08, 17)
        rng = random.Random(17)
        csr_service = ConnectorService(g, SolveOptions(backend="csr"))
        dict_service = ConnectorService(g, SolveOptions(backend="dict"))
        for query in random_query_batch(g, rng, 3):
            a = csr_service.solve(query)
            b = dict_service.solve(query)
            assert a.nodes == b.nodes
            assert a.metadata["root"] == b.metadata["root"]


class TestShardWorkerAPI:
    """The picklable shard-side surface: worker_payload -> service_from_payload
    -> sweep, the exact loop a persistent shard process runs."""

    def test_payload_round_trip_sweep_identical(self):
        g = random_connected_graph(40, 0.1, 83)
        rng = random.Random(83)
        query = rng.sample(sorted(g.nodes()), 4)
        parent = ConnectorService(g)
        replica = service_from_payload(parent.worker_payload())
        outcome = replica.sweep(query)
        reference = wiener_steiner(g, query)
        assert outcome.nodes == reference.nodes
        assert outcome.root == reference.metadata["root"]
        assert outcome.lam == reference.metadata["lambda"]
        assert outcome.candidates == reference.metadata["candidates"]

    def test_sweep_warm_reask_hits_result_cache(self):
        g = random_connected_graph(36, 0.1, 89)
        service = ConnectorService(g)
        query = sorted(g.nodes())[:4]
        cold = service.sweep(query)
        warm = service.sweep(query)
        assert warm is cold
        stats = service.stats()
        assert stats.result_hits == 1
        assert stats.queries_served == 2

    def test_sweep_and_solve_keys_do_not_collide(self):
        g = random_connected_graph(36, 0.1, 97)
        service = ConnectorService(g)
        query = sorted(g.nodes())[:3]
        outcome = service.sweep(query)
        result = service.solve(query)
        assert result.nodes == outcome.nodes
        # both cached, under distinct keys
        assert service.stats().result_cache_size == 2

    def test_payload_forwards_cache_limits(self):
        g = random_connected_graph(36, 0.1, 101)
        payload = ConnectorService(g).worker_payload(
            cache_limits={"max_cached_results": 1, "max_cached_roots": 1}
        )
        replica = service_from_payload(payload)
        for query in ([0, 1], [2, 3], [4, 5]):
            nodes = [sorted(g.nodes())[i] for i in query]
            replica.sweep(nodes)
        stats = replica.stats()
        assert stats.result_cache_size == 1
        assert stats.cached_roots <= 1


class TestParallelServing:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_solve_many_parallel_matches_one_shot(self, backend):
        g = random_connected_graph(40, 0.1, 23)
        rng = random.Random(23)
        queries = random_query_batch(g, rng, 3, lo=2, hi=4)
        queries.append(queries[0])  # a duplicate the batch must dedupe
        service = ConnectorService(g, SolveOptions(backend=backend))
        results = service.solve_many(queries, parallel=True, max_workers=2)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert_connector_identical(result, wiener_steiner(g, query, backend=backend))
        assert results[-1] is results[0]
        assert results[0].metadata["parallel"] is True
        assert results[0].metadata["workers"] == 2

    def test_parallel_batch_larger_than_result_cache(self):
        """A result cache smaller than the batch must not lose results
        mid-call (they are held locally until the batch is assembled)."""
        g = random_connected_graph(36, 0.1, 67)
        rng = random.Random(67)
        queries = random_query_batch(g, rng, 4, lo=2, hi=3)
        service = ConnectorService(g, max_cached_results=1)
        results = service.solve_many(queries, parallel=True, max_workers=2)
        for query, result in zip(queries, results):
            assert result.nodes == wiener_steiner(g, query).nodes

    def test_parallel_cold_batch_reports_no_phantom_hits(self):
        g = random_connected_graph(36, 0.1, 73)
        rng = random.Random(73)
        queries = random_query_batch(g, rng, 3, lo=2, hi=3)
        service = ConnectorService(g)
        service.solve_many(queries, parallel=True, max_workers=2)
        stats = service.stats()
        assert stats.result_hits == 0
        assert stats.result_misses == len(queries)
        assert stats.queries_served == len(queries)

    def test_worker_fault_tears_pool_down_cleanly(self):
        """Regression: a fault inside a pool worker must fail the call AND
        leave no pool processes (or their semaphores) behind — the shutdown
        is finally-joined with queued jobs cancelled.  The fault is injected
        naturally: a query spanning components passes the router-side
        membership check and explodes only inside the worker sweep."""
        import multiprocessing
        import time

        g = Graph([(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)])
        service = ConnectorService(g)
        with pytest.raises(DisconnectedGraphError):
            service.solve_many(
                [[0, 11], [0, 3], [1, 3]], parallel=True, max_workers=2
            )
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, (
                f"leaked pool processes: {multiprocessing.active_children()}"
            )
            time.sleep(0.01)
        # the service itself must survive the failed batch
        [result] = service.solve_many([[0, 3]], parallel=True, max_workers=2)
        assert result.nodes == wiener_steiner(g, [0, 3]).nodes

    def test_parallel_skips_already_cached(self):
        g = random_connected_graph(36, 0.1, 29)
        rng = random.Random(29)
        query = rng.sample(sorted(g.nodes()), 4)
        service = ConnectorService(g)
        sequential = service.solve(query)
        [parallel] = service.solve_many([query], parallel=True, max_workers=2)
        assert parallel is sequential  # no worker pool touched for it


class TestSampledSelection:
    @pytest.mark.skipif(not HAS_NUMPY, reason="parity needs both backends")
    def test_backend_parity_when_sampling(self):
        """``exact_threshold=0`` forces the sampled estimator for every
        candidate; the backends must still agree bit for bit."""
        options = SolveOptions(
            selection="sampled", exact_threshold=0, sample_sources=3
        )
        rng = random.Random(31)
        for seed in range(3):
            g = random_connected_graph(rng.randint(28, 56), 0.1, seed)
            query = rng.sample(sorted(g.nodes()), 4)
            a = wiener_steiner(
                g, query, selection="sampled", backend="csr"
            )
            b = wiener_steiner(
                g, query, selection="sampled", backend="dict"
            )
            assert a.nodes == b.nodes
            a2 = ConnectorService(g, options.replace(backend="csr")).solve(query)
            b2 = ConnectorService(g, options.replace(backend="dict")).solve(query)
            assert a2.nodes == b2.nodes

    def test_sampled_covering_sources_equals_exact(self):
        g = random_connected_graph(30, 0.12, 37)
        rng = random.Random(37)
        query = rng.sample(sorted(g.nodes()), 4)
        sampled = ConnectorService(
            g,
            SolveOptions(selection="sampled", exact_threshold=0,
                         sample_sources=10_000),
        ).solve(query)
        exact = wiener_steiner(g, query, selection="wiener")
        assert sampled.nodes == exact.nodes

    @pytest.mark.skipif(not HAS_NUMPY, reason="CSR dispatch needs numpy")
    def test_wiener_index_sampled_csr_matches_dict(self, monkeypatch):
        import repro.graphs.wiener as wiener_mod

        g = random_connected_graph(150, 0.05, 41)
        csr_value = wiener_mod.wiener_index_sampled(
            g, num_sources=12, rng=random.Random(5)
        )
        monkeypatch.setattr(wiener_mod, "CSR_DISPATCH_THRESHOLD", 10**9)
        dict_value = wiener_mod.wiener_index_sampled(
            g, num_sources=12, rng=random.Random(5)
        )
        assert csr_value == dict_value


class TestMethodProtocol:
    def test_registry_satisfies_protocol(self):
        for tag, method in METHODS.items():
            assert isinstance(method, Method)
            assert method.name == tag

    def test_solve_equals_legacy_call(self):
        g = random_connected_graph(30, 0.12, 43)
        rng = random.Random(43)
        query = rng.sample(sorted(g.nodes()), 3)
        for tag, method in METHODS.items():
            assert method.solve(g, query).nodes == method(g, query).nodes

    def test_function_method_adapter(self):
        method = FunctionMethod("st", steiner_connector)
        g = random_connected_graph(24, 0.15, 47)
        query = sorted(g.nodes())[:3]
        assert method.solve(g, query, SolveOptions()).nodes == \
            steiner_connector(g, query).nodes

    def test_service_dispatches_baselines_uniformly(self):
        g = random_connected_graph(30, 0.12, 53)
        rng = random.Random(53)
        query = rng.sample(sorted(g.nodes()), 3)
        service = ConnectorService(g)
        for tag in METHODS:
            result = service.solve(query, SolveOptions(method=tag))
            assert result.nodes == METHODS[tag].solve(g, query).nodes
        # and the per-(query, options) result cache applies to baselines too
        again = service.solve(query, SolveOptions(method="st"))
        assert again is service.solve(query, SolveOptions(method="st"))

    def test_unknown_method_raises(self, triangle):
        with pytest.raises(ValueError):
            ConnectorService(triangle).solve(
                [0, 1], SolveOptions(method="frobnicate")
            )


class TestBatchedServingBeatsOneShot:
    def test_solve_many_faster_and_bit_identical(self):
        """The acceptance contract at test scale: a skewed request batch is
        served faster than independent ``wiener_steiner`` calls and returns
        bit-identical connectors.  (The full 10k/50k reference measurement
        lives in ``benchmarks/bench_serving.py`` / ``BENCH_serving.json``.)

        The margin asserted here is deliberately loose (just *faster*): the
        service does a deterministic fraction of the one-shot work — 4
        distinct sweeps instead of 12 — so only pathological scheduler
        noise could flip the comparison.
        """
        import time

        g = random_connected_graph(400, 0.008, 71)
        rng = random.Random(71)
        pool = [rng.sample(sorted(g.nodes()), 5) for _ in range(4)]
        requests = pool + [pool[rng.randrange(4)] for _ in range(8)]
        rng.shuffle(requests)

        started = time.perf_counter()
        one_shot = [wiener_steiner(g, query) for query in requests]
        one_shot_seconds = time.perf_counter() - started

        service = ConnectorService(g)
        started = time.perf_counter()
        served = service.solve_many(requests)
        serving_seconds = time.perf_counter() - started

        for a, b in zip(one_shot, served):
            assert a.nodes == b.nodes
        assert service.stats().result_hits == 8
        assert serving_seconds < one_shot_seconds


class TestServiceLandmarks:
    def test_landmark_index_built_once_and_sound(self):
        g = random_connected_graph(40, 0.1, 59)
        service = ConnectorService(g, landmarks=4)
        index = service.landmark_index
        assert index is service.landmark_index  # built lazily, then reused
        nodes = sorted(g.nodes())
        truth = bfs_distances(g, nodes[0])
        for v in nodes[1:6]:
            assert service.estimate_distance(nodes[0], v) >= truth[v]

    def test_no_landmarks_by_default(self, triangle):
        service = ConnectorService(triangle)
        assert service.landmark_index is None
        with pytest.raises(GraphError):
            service.estimate_distance(0, 1)

    @pytest.mark.skipif(not HAS_NUMPY, reason="CSR tables need numpy")
    def test_csr_tables_match_dict_tables(self):
        g = random_connected_graph(150, 0.05, 61)
        fast = LandmarkIndex(g, num_landmarks=3)

        class _NoCSR(LandmarkIndex):
            CSR_THRESHOLD = 10**9

        slow = _NoCSR(g, num_landmarks=3)
        assert fast.landmarks == slow.landmarks
        assert fast._tables == slow._tables


class TestServiceLifecycleAndStats:
    """The shared lifecycle surface and the hit_rate() observability helper."""

    def test_context_manager_is_a_noop_close(self):
        g = random_connected_graph(20, 0.2, 71)
        with ConnectorService(g) as service:
            result = service.solve([0, 1])
        # close() holds no processes: the service stays fully usable, so
        # `with` is safe sugar for scoped construction at every call site.
        assert_connector_identical(service.solve([0, 1]), result)

    def test_hit_rate_zero_lookup_guard(self):
        g = random_connected_graph(16, 0.25, 73)
        stats = ConnectorService(g).stats()
        for layer in ("result", "candidate", "score"):
            assert stats.hit_rate(layer) == 0.0

    def test_hit_rate_counts_warm_reasks(self):
        g = random_connected_graph(24, 0.18, 77)
        service = ConnectorService(g)
        queries = random_query_batch(g, random.Random(7), 4)
        service.solve_many(queries + queries)
        stats = service.stats()
        assert stats.hit_rate() == stats.result_hits / (
            stats.result_hits + stats.result_misses
        )
        assert stats.hit_rate() >= 0.5  # every re-ask is a warm hit
        assert 0.0 <= stats.hit_rate("candidate") <= 1.0
        assert 0.0 <= stats.hit_rate("score") <= 1.0

    def test_hit_rate_rejects_unknown_layer(self):
        g = random_connected_graph(12, 0.3, 79)
        with pytest.raises(ValueError, match="unknown cache layer"):
            ConnectorService(g).stats().hit_rate("bfs")
