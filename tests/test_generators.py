"""Tests for graph generators."""

import math
import random

import pytest

from repro.errors import GraphError
from repro.graphs.components import connected_components, is_connected
from repro.graphs.generators import (
    barabasi_albert,
    complete_graph,
    connectify,
    cycle_graph,
    erdos_renyi,
    erdos_renyi_with_degree,
    figure2_gadget,
    grid_graph,
    hypercube_graph,
    line_with_universal_root,
    lollipop_graph,
    path_graph,
    planted_partition,
    random_geometric,
    star_graph,
)
from repro.graphs.metrics import average_degree
from repro.graphs.wiener import wiener_index


class TestDeterministicTopologies:
    def test_path(self):
        g = path_graph(6)
        assert g.num_nodes == 6 and g.num_edges == 5

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7 and g.num_edges == 7

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_nodes == 16
        assert g.num_edges == 4 * 16 // 2
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_lollipop(self):
        g = lollipop_graph(4, 3)
        assert g.num_nodes == 7
        assert g.num_edges == 6 + 3


class TestFigure2Gadget:
    def test_paper_values(self):
        g = figure2_gadget(10)
        q = list(range(1, 11))
        assert wiener_index(g.subgraph(q)) == 165
        assert wiener_index(g.subgraph(q + ["r1"])) == 151
        assert wiener_index(g.subgraph(q + ["r2"])) == 151
        assert wiener_index(g.subgraph(q + ["r1", "r2"])) == 142

    def test_too_short_raises(self):
        with pytest.raises(GraphError):
            figure2_gadget(3)

    def test_universal_root_gap_grows(self):
        ratios = []
        for h in (10, 20, 40):
            g = line_with_universal_root(h)
            q = list(range(1, h + 1))
            ratios.append(
                wiener_index(g.subgraph(q)) / wiener_index(g.subgraph(q + ["r"]))
            )
        assert ratios[0] < ratios[1] < ratios[2]


class TestErdosRenyi:
    def test_edge_count_concentrates(self):
        rng = random.Random(0)
        n, p = 200, 0.05
        g = erdos_renyi(n, p, rng=rng)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 4 * math.sqrt(expected)

    def test_extremes(self):
        assert erdos_renyi(10, 0.0).num_edges == 0
        assert erdos_renyi(6, 1.0).num_edges == 15

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi(5, 1.5)

    def test_target_degree(self):
        g = erdos_renyi_with_degree(300, 8.0, rng=random.Random(1))
        assert average_degree(g) == pytest.approx(8.0, rel=0.2)

    def test_deterministic_given_rng(self):
        a = erdos_renyi(50, 0.1, rng=random.Random(5))
        b = erdos_renyi(50, 0.1, rng=random.Random(5))
        assert a == b


class TestBarabasiAlbert:
    def test_size_and_degree(self):
        g = barabasi_albert(200, 3, rng=random.Random(2))
        assert g.num_nodes == 200
        # Each of the n - (m+1) later nodes adds exactly m edges.
        assert g.num_edges == 3 + (200 - 4) * 3
        assert is_connected(g)

    def test_heavy_tail(self):
        g = barabasi_albert(500, 2, rng=random.Random(3))
        degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
        assert degrees[0] > 8 * (2 * g.num_edges / g.num_nodes)

    def test_invalid_attachment(self):
        with pytest.raises(GraphError):
            barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert(5, 5)


class TestPlantedPartition:
    def test_communities_returned(self):
        g, comms = planted_partition([20, 30], 0.3, 0.01, rng=random.Random(4))
        assert [len(c) for c in comms] == [20, 30]
        assert g.num_nodes == 50

    def test_intra_denser_than_inter(self):
        rng = random.Random(5)
        g, comms = planted_partition([50, 50], 0.3, 0.01, rng=rng)
        intra = inter = 0
        membership = {v: i for i, c in enumerate(comms) for v in c}
        for u, v in g.edges():
            if membership[u] == membership[v]:
                intra += 1
            else:
                inter += 1
        assert intra > 4 * inter

    def test_zero_p_out_disconnects(self):
        g, comms = planted_partition([30, 30], 0.5, 0.0, rng=random.Random(6))
        assert len(connected_components(g)) >= 2


class TestRandomGeometric:
    def test_connected_after_connectify(self):
        rng = random.Random(7)
        g = connectify(random_geometric(300, 0.08, rng=rng), rng=rng)
        assert is_connected(g)

    def test_radius_controls_density(self):
        rng = random.Random(8)
        sparse = random_geometric(200, 0.05, rng=rng)
        dense = random_geometric(200, 0.15, rng=random.Random(8))
        assert dense.num_edges > sparse.num_edges


class TestConnectify:
    def test_connects_components(self):
        from repro.graphs.graph import Graph

        g = Graph([(0, 1), (2, 3), (4, 5)])
        connectify(g, rng=random.Random(9))
        assert is_connected(g)

    def test_noop_on_connected(self, triangle):
        before = triangle.num_edges
        connectify(triangle, rng=random.Random(10))
        assert triangle.num_edges == before
