"""Tests for AdjustDistances (Lemma 2 guarantees)."""

import random

import pytest

from helpers import random_connected_graph
from repro.errors import NodeNotFoundError
from repro.core.adjust import ALPHA, adjust_distances, verify_lemma2
from repro.core.steiner import steiner_tree_unweighted
from repro.graphs.graph import Graph
from repro.graphs.components import is_tree
from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.traversal import bfs_tree


class TestAdjustBasics:
    def test_identity_on_shortest_path_tree(self, path5):
        # A path rooted at its end already is a shortest-path tree.
        adjusted = adjust_distances(path5, path5, 0)
        assert set(adjusted.nodes()) == set(path5.nodes())
        assert is_tree(adjusted)

    def test_missing_root_raises(self, path5):
        tree = Graph([(0, 1)])
        with pytest.raises(NodeNotFoundError):
            adjust_distances(path5, tree, 4)

    def test_output_is_tree(self):
        for seed in range(5):
            g = random_connected_graph(40, 0.1, seed + 400)
            rng = random.Random(seed)
            terminals = rng.sample(sorted(g.nodes()), 5)
            steiner = steiner_tree_unweighted(g, terminals)
            root = terminals[0]
            adjusted = adjust_distances(g, steiner, root)
            assert is_tree(adjusted)

    def test_long_detour_gets_shortcut(self):
        # Cycle of 12: tree = the long way around from the root; vertex
        # opposite the root is at distance 11 in the tree but 1 in G.
        g = cycle_graph(12)
        tree = Graph([(i, i + 1) for i in range(11)])
        adjusted = adjust_distances(g, tree, 0)
        from repro.graphs.traversal import bfs_distances

        inside = bfs_distances(adjusted, 0)
        host = bfs_distances(g, 0)
        for node in tree.nodes():
            assert inside[node] <= ALPHA * host[node] + 1e-9


class TestLemma2Properties:
    """Properties (a)-(d): containment, size blow-up, stretch."""

    @pytest.mark.parametrize("seed", range(8))
    def test_on_random_steiner_trees(self, seed):
        g = random_connected_graph(50, 0.08, seed + 410)
        rng = random.Random(seed)
        terminals = rng.sample(sorted(g.nodes()), 6)
        steiner = steiner_tree_unweighted(g, terminals)
        root = terminals[0]
        adjusted = adjust_distances(g, steiner, root)
        problems = verify_lemma2(g, steiner, adjusted, root)
        assert problems == []

    @pytest.mark.parametrize("seed", range(4))
    def test_with_precomputed_bfs(self, seed):
        g = random_connected_graph(30, 0.12, seed + 420)
        rng = random.Random(seed)
        terminals = rng.sample(sorted(g.nodes()), 4)
        steiner = steiner_tree_unweighted(g, terminals)
        root = terminals[0]
        distances, parents = bfs_tree(g, root)
        adjusted = adjust_distances(
            g, steiner, root,
            bfs_distances_map=distances, bfs_parents_map=parents,
        )
        assert verify_lemma2(g, steiner, adjusted, root) == []

    def test_alpha_one_forces_shortest_path_tree(self):
        """With alpha=1 every vertex must sit at its exact host distance."""
        g = cycle_graph(10)
        tree = Graph([(i, i + 1) for i in range(9)])
        adjusted = adjust_distances(g, tree, 0, alpha=1.0)
        from repro.graphs.traversal import bfs_distances

        inside = bfs_distances(adjusted, 0)
        host = bfs_distances(g, 0)
        for node in adjusted.nodes():
            assert inside[node] == host[node]

    def test_single_node_tree(self, path5):
        tree = Graph(nodes=[2])
        adjusted = adjust_distances(path5, tree, 2)
        assert set(adjusted.nodes()) == {2}
