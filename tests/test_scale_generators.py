"""Tests for the scale-free generator families and the CSR stream path.

The million-node scenario harness rests on two contracts checked here:

* every generator family has an *edge-stream* construction path whose
  edges, fed to :meth:`CSRGraph.from_edge_stream`, produce exactly the
  arrays :meth:`CSRGraph.from_graph` builds from the dict wrapper — so
  the 10^6-node path (which never materializes a dict ``Graph``) serves
  the same instances the tests exercise at small scale;
* generation is a pure function of the seed: byte-equal graphs across
  processes regardless of ``PYTHONHASHSEED``.
"""

import math
import pathlib
import random
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.errors import GraphError
from repro.graphs.components import connected_components, is_connected
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    barabasi_albert,
    barabasi_albert_edges,
    configuration_model,
    configuration_model_edges,
    powerlaw_degrees,
    stochastic_kronecker,
    stochastic_kronecker_edges,
    watts_strogatz,
    watts_strogatz_edges,
)
from repro.graphs.graph import Graph

_SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parent.parent)


def csr_equal(a: CSRGraph, b: CSRGraph) -> bool:
    return np.array_equal(a.indptr, b.indptr) and np.array_equal(
        a.indices, b.indices
    )


class TestFromEdgeStream:
    def test_matches_from_graph(self):
        g = barabasi_albert(150, 2, random.Random(0))
        streamed = CSRGraph.from_edge_stream(150, g.edges())
        assert csr_equal(streamed, CSRGraph.from_graph(g))

    def test_duplicate_and_reversed_edges_collapse(self):
        streamed = CSRGraph.from_edge_stream(
            3, [(0, 1), (1, 0), (0, 1), (1, 2)]
        )
        reference = CSRGraph.from_graph(Graph([(0, 1), (1, 2)]))
        assert csr_equal(streamed, reference)

    def test_small_chunks_same_arrays(self):
        g = watts_strogatz(60, 4, 0.3, random.Random(1))
        whole = CSRGraph.from_edge_stream(60, g.edges())
        chunked = CSRGraph.from_edge_stream(60, g.edges(), chunk_size=7)
        assert csr_equal(whole, chunked)

    def test_rejects_self_loops(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_stream(3, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edge_stream(3, [(0, 3)])
        with pytest.raises(GraphError):
            CSRGraph.from_edge_stream(3, [(-1, 0)])

    def test_to_graph_round_trips(self):
        g = barabasi_albert(80, 2, random.Random(2))
        assert CSRGraph.from_edge_stream(80, g.edges()).to_graph() == g


class TestWattsStrogatz:
    def test_shape(self):
        g = watts_strogatz(100, 6, 0.1, random.Random(0))
        assert g.num_nodes == 100
        assert g.num_edges == 100 * 6 // 2

    def test_zero_p_is_ring_lattice(self):
        g = watts_strogatz(30, 4, 0.0, random.Random(1))
        for u in range(30):
            for offset in (1, 2):
                assert g.has_edge(u, (u + offset) % 30)

    def test_rewiring_changes_lattice(self):
        lattice = watts_strogatz(60, 4, 0.0, random.Random(2))
        rewired = watts_strogatz(60, 4, 0.8, random.Random(2))
        assert rewired != lattice
        assert rewired.num_edges == lattice.num_edges

    def test_validation(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            watts_strogatz(10, 0, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(4, 4, 0.1)  # k >= n
        with pytest.raises(GraphError):
            watts_strogatz(10, 4, 1.5)

    def test_stream_matches_dict(self):
        g = watts_strogatz(80, 4, 0.3, random.Random(3))
        streamed = CSRGraph.from_edge_stream(
            80, watts_strogatz_edges(80, 4, 0.3, random.Random(3))
        )
        assert csr_equal(streamed, CSRGraph.from_graph(g))


class TestStochasticKronecker:
    def test_shape(self):
        g = stochastic_kronecker(8, 8, rng=random.Random(0))
        assert g.num_nodes == 1 << 8
        # Dedup and self-loop rejection may leave it slightly short, but
        # the sampler should land near the requested edge budget.
        assert g.num_edges >= 0.8 * 8 * (1 << 8)

    def test_heavy_tail(self):
        g = stochastic_kronecker(9, 8, rng=random.Random(1))
        degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
        mean = 2 * g.num_edges / g.num_nodes
        assert degrees[0] > 5 * mean

    def test_validation(self):
        with pytest.raises(GraphError):
            stochastic_kronecker(0, 4)
        with pytest.raises(GraphError):
            stochastic_kronecker(4, 0)
        with pytest.raises(GraphError):
            stochastic_kronecker(4, 4, initiator=(0.5, 0.5, 0.5))
        with pytest.raises(GraphError):
            stochastic_kronecker(4, 4, initiator=(0.5, 0.5, 0.5, -0.5))

    def test_stream_matches_dict(self):
        g = stochastic_kronecker(7, 6, rng=random.Random(2))
        streamed = CSRGraph.from_edge_stream(
            1 << 7, stochastic_kronecker_edges(7, 6, rng=random.Random(2))
        )
        assert csr_equal(streamed, CSRGraph.from_graph(g))


class TestConfigurationModel:
    def test_degrees_bounded_by_prescription(self):
        degrees = [3] * 40
        g = configuration_model(degrees, random.Random(0))
        assert g.num_nodes == 40
        assert all(g.degree(v) <= 3 for v in g.nodes())
        # Stub matching realizes most of the prescribed degree mass.
        assert sum(g.degree(v) for v in g.nodes()) >= 0.7 * sum(degrees)

    def test_validation(self):
        with pytest.raises(GraphError):
            configuration_model([1, 1, 1])  # odd stub count
        with pytest.raises(GraphError):
            configuration_model([2, -1, 1])

    def test_stream_matches_dict(self):
        degrees = powerlaw_degrees(60, rng=random.Random(1))
        g = configuration_model(degrees, random.Random(2))
        streamed = CSRGraph.from_edge_stream(
            60, configuration_model_edges(degrees, random.Random(2))
        )
        assert csr_equal(streamed, CSRGraph.from_graph(g))


class TestPowerlawDegrees:
    def test_shape_and_bounds(self):
        degrees = powerlaw_degrees(400, exponent=2.5, rng=random.Random(0))
        assert len(degrees) == 400
        assert sum(degrees) % 2 == 0
        cap = int(math.isqrt(400))
        assert all(1 <= d <= cap for d in degrees)

    def test_heavier_exponent_means_lighter_tail(self):
        rng = random.Random(1)
        shallow = powerlaw_degrees(500, exponent=2.1, rng=rng)
        steep = powerlaw_degrees(500, exponent=3.5, rng=random.Random(1))
        assert sum(shallow) > sum(steep)

    def test_feeds_configuration_model(self):
        degrees = powerlaw_degrees(200, rng=random.Random(2))
        g = configuration_model(degrees, random.Random(3))
        top = max(g.degree(v) for v in g.nodes())
        assert top > 3 * (2 * g.num_edges / g.num_nodes)


class TestBarabasiAlbertStream:
    def test_stream_matches_dict(self):
        g = barabasi_albert(120, 3, random.Random(4))
        streamed = CSRGraph.from_edge_stream(
            120, barabasi_albert_edges(120, 3, random.Random(4))
        )
        assert csr_equal(streamed, CSRGraph.from_graph(g))

    def test_stream_connected_at_scale(self):
        csr = CSRGraph.from_edge_stream(
            5000, barabasi_albert_edges(5000, 2, random.Random(5))
        )
        assert is_connected(csr.to_graph())


class TestHashSeedIndependence:
    """Satellite: equal seeds give byte-equal graphs in any process."""

    CODE = (
        "import hashlib, random\n"
        "from repro.graphs.generators import (barabasi_albert,\n"
        "    watts_strogatz, stochastic_kronecker, configuration_model,\n"
        "    powerlaw_degrees, erdos_renyi, connectify, planted_partition)\n"
        "def digest(graph):\n"
        "    edges = sorted(tuple(sorted(e, key=repr)) for e in graph.edges())\n"
        "    return hashlib.sha256(repr(edges).encode()).hexdigest()[:16]\n"
        "out = [digest(barabasi_albert(120, 3, random.Random(1)))]\n"
        "out.append(digest(watts_strogatz(80, 4, 0.2, random.Random(2))))\n"
        "out.append(digest(stochastic_kronecker(7, 6, rng=random.Random(3))))\n"
        "out.append(digest(configuration_model(\n"
        "    powerlaw_degrees(100, rng=random.Random(4)), random.Random(5))))\n"
        "g = erdos_renyi(60, 0.05, rng=random.Random(6))\n"
        "connectify(g, rng=random.Random(7))\n"
        "out.append(digest(g))\n"
        "graph, _ = planted_partition([20, 20], 0.3, 0.02, rng=random.Random(8))\n"
        "out.append(digest(graph))\n"
        "print('|'.join(out))\n"
    )

    def test_digests_stable_across_hash_seeds(self):
        outputs = set()
        for hash_seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", self.CODE],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                    "PYTHONPATH": _SRC_DIR,
                },
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1


class TestScaleFreeComponents:
    def test_configuration_model_may_disconnect(self):
        # Power-law sequences with many degree-1 nodes routinely leave
        # stragglers; the harness's component-aware sampler depends on
        # this being handled, so pin the premise.
        degrees = powerlaw_degrees(300, exponent=3.0, rng=random.Random(6))
        g = configuration_model(degrees, random.Random(7))
        assert len(connected_components(g)) >= 1  # smoke: components compute
