"""Tests for the ConnectorResult container."""

import math

import pytest

from repro.core.result import ConnectorResult
from repro.graphs.generators import star_graph


class TestConnectorResult:
    def make(self, nodes, query=(1, 2)):
        g = star_graph(5)
        return ConnectorResult(
            host=g, nodes=frozenset(nodes), query=frozenset(query), method="t"
        )

    def test_basic_properties(self):
        result = self.make([0, 1, 2])
        assert result.size == 3
        assert result.num_added == 1
        assert result.added_nodes == frozenset([0])
        assert result.wiener_index == 1 + 1 + 2
        assert result.density == pytest.approx(2 / 3)

    def test_query_must_be_subset(self):
        with pytest.raises(ValueError):
            self.make([1, 2], query=(1, 2, 3))

    def test_subgraph_cached_and_induced(self):
        result = self.make([0, 1, 2])
        assert result.subgraph is result.subgraph
        assert result.subgraph.num_edges == 2

    def test_disconnected_infinite_wiener(self):
        result = self.make([1, 2])  # two leaves without the hub
        assert result.wiener_index == math.inf
        assert "inf" in result.summary()

    def test_summary_contains_method_and_sizes(self):
        result = self.make([0, 1, 2])
        text = result.summary()
        assert "t:" in text
        assert "|V(H)|=3" in text
        assert "|Q|=2" in text

    def test_metadata_not_compared(self):
        a = self.make([0, 1, 2])
        b = self.make([0, 1, 2])
        b.metadata["x"] = 1
        assert a == b
