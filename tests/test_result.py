"""Tests for the ConnectorResult container."""

import math

import pytest

from repro.core.result import ConnectorResult
from repro.graphs.generators import star_graph


class TestConnectorResult:
    def make(self, nodes, query=(1, 2)):
        g = star_graph(5)
        return ConnectorResult(
            host=g, nodes=frozenset(nodes), query=frozenset(query), method="t"
        )

    def test_basic_properties(self):
        result = self.make([0, 1, 2])
        assert result.size == 3
        assert result.num_added == 1
        assert result.added_nodes == frozenset([0])
        assert result.wiener_index == 1 + 1 + 2
        assert result.density == pytest.approx(2 / 3)

    def test_query_must_be_subset(self):
        with pytest.raises(ValueError):
            self.make([1, 2], query=(1, 2, 3))

    def test_subgraph_cached_and_induced(self):
        result = self.make([0, 1, 2])
        assert result.subgraph is result.subgraph
        assert result.subgraph.num_edges == 2

    def test_disconnected_infinite_wiener(self):
        result = self.make([1, 2])  # two leaves without the hub
        assert result.wiener_index == math.inf
        assert "inf" in result.summary()

    def test_summary_contains_method_and_sizes(self):
        result = self.make([0, 1, 2])
        text = result.summary()
        assert "t:" in text
        assert "|V(H)|=3" in text
        assert "|Q|=2" in text

    def test_metadata_not_compared(self):
        a = self.make([0, 1, 2])
        b = self.make([0, 1, 2])
        b.metadata["x"] = 1
        assert a == b


class TestPickleRoundTrip:
    """Results cross process boundaries in the parallel/sharded serving
    layers; the round trip must preserve equality and every derived value
    while shipping none of the cached derivations."""

    def make(self):
        g = star_graph(5)
        return ConnectorResult(
            host=g,
            nodes=frozenset([0, 1, 2]),
            query=frozenset([1, 2]),
            method="ws-q",
            metadata={"root": 1, "lambda": 0.7},
        )

    def test_round_trip_equality(self):
        import pickle

        original = self.make()
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        assert clone.nodes == original.nodes
        assert clone.query == original.query
        assert clone.method == original.method
        assert clone.metadata == original.metadata
        assert clone.host == original.host

    def test_derived_values_recompute_identically(self):
        import pickle

        original = self.make()
        # populate every cached derivation before pickling
        expected = (original.wiener_index, original.density,
                    original.subgraph.num_edges)
        clone = pickle.loads(pickle.dumps(original))
        assert (clone.wiener_index, clone.density,
                clone.subgraph.num_edges) == expected

    def test_cached_derivations_stripped_from_pickle(self):
        import pickle

        warm = self.make()
        _ = warm.subgraph, warm.wiener_index, warm.density
        cold_bytes = pickle.dumps(self.make())
        assert len(pickle.dumps(warm)) == len(cold_bytes)
        assert "subgraph" not in vars(pickle.loads(pickle.dumps(warm)))
