"""Tests for the Program (7) formulation and its lazy-constraint solver."""

import math
import random

import pytest

from helpers import random_connected_graph
from repro.errors import InvalidQueryError, ReproError
from repro.core.exact import brute_force
from repro.graphs.generators import cycle_graph, figure2_gadget, path_graph
from repro.solvers.ilp import (
    build_program7,
    program7_lower_bound,
    solve_program7,
)


class TestBuildProgram7:
    def test_variable_layout(self):
        g = path_graph(4)
        program = build_program7(g, [0, 3])
        # y for the 2 non-query vertices, x for 2*3 directed edges,
        # p for 1 query pair + 2 (root, candidate) pairs.
        assert len(program.y_index) == 2
        assert len(program.x_index) == 6
        assert len(program.pairs) == 3
        assert program.num_variables == 2 + 6 + 3

    def test_candidate_restriction(self):
        g = path_graph(5)
        program = build_program7(g, [0, 4], candidates=[2])
        assert program.pool == [2]
        assert len(program.pairs) == 2  # (0,4) and (root, 2)

    def test_empty_query_raises(self):
        with pytest.raises(InvalidQueryError):
            build_program7(path_graph(3), [])

    def test_unknown_query_raises(self):
        with pytest.raises(InvalidQueryError):
            build_program7(path_graph(3), [9])

    def test_size_guard(self):
        from repro.graphs.generators import complete_graph

        g = complete_graph(500)  # 2 * C(500,2) directed-edge vars > limit
        with pytest.raises(ReproError):
            build_program7(g, [0, 1])


class TestLowerBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_is_lower_bound(self, seed):
        g = random_connected_graph(12, 0.3, seed + 930)
        rng = random.Random(seed)
        q = rng.sample(sorted(g.nodes()), 3)
        opt = brute_force(g, q, max_candidates=12).wiener_index
        bound = program7_lower_bound(g, q)
        assert bound.converged
        assert bound.value <= opt + 1e-6

    def test_exact_on_path_pair(self):
        # Connecting the ends of a path forces the whole path: y all 1,
        # objective counts the query pair at host distance + intermediate
        # pair terms.
        g = path_graph(4)
        bound = program7_lower_bound(g, [0, 3])
        # Pair (0,3) costs 3; (root,1) costs 1*y1; (root,2) costs 2*y2;
        # connectivity forces y1 = y2 = 1 -> total 6.
        assert bound.value == pytest.approx(6.0, abs=1e-6)

    def test_cycle_cuts_kick_in(self):
        """On a cycle the tree constraints need at least one lazy cut."""
        g = cycle_graph(6)
        bound = program7_lower_bound(g, [0, 2, 4])
        assert bound.converged
        assert bound.value > 0

    def test_figure2_bound(self):
        g = figure2_gadget(6)
        q = list(range(1, 7))
        opt = brute_force(g, q, candidates=["r1", "r2"]).wiener_index
        bound = program7_lower_bound(g, q)
        assert bound.converged
        assert 0 < bound.value <= opt + 1e-6


class TestSolveProgram7:
    @pytest.mark.parametrize("seed", range(3))
    def test_integer_solution_bounds_optimum(self, seed):
        g = random_connected_graph(11, 0.3, seed + 940)
        rng = random.Random(seed)
        q = rng.sample(sorted(g.nodes()), 3)
        opt = brute_force(g, q, max_candidates=11).wiener_index
        solution = solve_program7(g, q)
        assert solution.converged
        assert solution.objective <= opt + 1e-6
        assert set(q) <= set(solution.selected)

    def test_ip_at_least_lp(self):
        g = random_connected_graph(11, 0.3, 950)
        q = sorted(g.nodes())[:3]
        lp = program7_lower_bound(g, q)
        ip = solve_program7(g, q)
        assert ip.objective >= lp.value - 1e-6

    def test_selected_forms_connector_on_simple_instance(self):
        from repro.graphs.components import nodes_connect

        g = path_graph(5)
        solution = solve_program7(g, [0, 4])
        assert solution.selected == frozenset(range(5))
        assert nodes_connect(g, solution.selected)
