"""Tests for the comparison methods (ppr, cps, ctp, st) and their registry."""

import random

import pytest

from helpers import random_connected_graph
from repro.errors import DisconnectedGraphError, InvalidQueryError
from repro.baselines import METHODS, cps_connector, ctp_connector, ppr_connector, steiner_connector
from repro.baselines.common import greedy_connect, validate_query
from repro.graphs.components import nodes_connect
from repro.graphs.generators import path_graph, planted_partition, star_graph, connectify
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def community_graph():
    rng = random.Random(100)
    g, comms = planted_partition([30, 30, 30], 0.3, 0.01, rng=rng)
    connectify(g, rng=rng)
    return g, comms


class TestCommon:
    def test_validate_query(self, triangle):
        assert validate_query(triangle, [0, 1]) == frozenset([0, 1])
        with pytest.raises(InvalidQueryError):
            validate_query(triangle, [])
        with pytest.raises(InvalidQueryError):
            validate_query(triangle, [9])

    def test_greedy_connect_trivial_when_connected(self, triangle):
        solution = greedy_connect(triangle, frozenset([0, 1]), {})
        assert solution == {0, 1}

    def test_greedy_connect_adds_by_score(self):
        g = star_graph(5)
        # Connect leaves 1 and 2; hub 0 is the only option regardless of score.
        solution = greedy_connect(g, frozenset([1, 2]), {0: 0.1, 3: 9.0})
        assert 0 in solution

    def test_greedy_connect_prunes_stragglers(self):
        g = path_graph(6)
        # Vertex 5 scores highest but never touches the 0-2 component
        # before connection succeeds; it must not survive in the output.
        scores = {5: 10.0, 1: 1.0, 3: 0.5, 4: 0.4}
        solution = greedy_connect(g, frozenset([0, 2]), scores)
        assert nodes_connect(g, solution)
        assert 5 not in solution

    def test_greedy_connect_disconnected_raises(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            greedy_connect(g, frozenset([0, 3]), {})


class TestEveryMethodContract:
    """All registered methods return valid connectors."""

    @pytest.mark.parametrize("tag", sorted(METHODS))
    def test_valid_connector(self, tag):
        g = random_connected_graph(50, 0.1, 150)
        rng = random.Random(1)
        query = rng.sample(sorted(g.nodes()), 4)
        result = METHODS[tag](g, query)
        assert result.method == tag
        assert set(query) <= set(result.nodes)
        assert nodes_connect(g, result.nodes)
        assert result.wiener_index < float("inf")

    @pytest.mark.parametrize("tag", sorted(METHODS))
    def test_empty_query_raises(self, tag):
        g = path_graph(4)
        with pytest.raises(InvalidQueryError):
            METHODS[tag](g, [])


class TestPPR:
    def test_star_adds_only_hub(self):
        g = star_graph(6)
        result = ppr_connector(g, [1, 2, 3])
        assert result.nodes == frozenset([0, 1, 2, 3])

    def test_scores_metadata(self, two_triangles_bridge):
        result = ppr_connector(two_triangles_bridge, [0, 4])
        assert result.metadata["damping"] == 0.85


class TestCPS:
    def test_bridge_vertex_found(self, two_triangles_bridge):
        result = cps_connector(two_triangles_bridge, [0, 4])
        assert {2, 3} <= set(result.nodes)

    def test_larger_than_wsq_on_communities(self, community_graph):
        from repro.core import wiener_steiner

        g, comms = community_graph
        query = [sorted(c)[0] for c in comms]
        cps = cps_connector(g, query)
        wsq = wiener_steiner(g, query)
        assert cps.size >= wsq.size


class TestCTP:
    def test_solution_contains_query_component(self, community_graph):
        g, comms = community_graph
        query = sorted(comms[0])[:3]
        result = ctp_connector(g, query)
        assert set(query) <= set(result.nodes)
        assert nodes_connect(g, result.nodes)

    def test_returns_dense_subgraph(self, community_graph):
        """ctp maximizes min degree, so its solution should not be a tree."""
        g, comms = community_graph
        query = sorted(comms[1])[:3]
        result = ctp_connector(g, query)
        sub = result.subgraph
        min_degree = min(sub.degree(v) for v in sub.nodes())
        assert min_degree >= 1
        assert result.metadata["ball_size"] >= result.size

    def test_disconnected_query_raises(self):
        g = Graph([(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            ctp_connector(g, [0, 3])


class TestSteinerBaseline:
    def test_tree_sized_solution(self):
        g = random_connected_graph(40, 0.12, 160)
        query = sorted(g.nodes())[:5]
        result = steiner_connector(g, query)
        assert result.metadata["tree_edges"] >= result.size - 1 - 5

    def test_pair_query_is_shortest_path(self):
        g = path_graph(8)
        result = steiner_connector(g, [0, 7])
        assert result.size == 8
