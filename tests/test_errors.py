"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DisconnectedGraphError,
    EdgeNotFoundError,
    GraphError,
    InvalidQueryError,
    NodeNotFoundError,
    ParseError,
    ReproError,
    SolverBudgetExceeded,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            GraphError,
            NodeNotFoundError,
            EdgeNotFoundError,
            DisconnectedGraphError,
            InvalidQueryError,
            SolverBudgetExceeded,
            ParseError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_node_not_found_is_keyerror(self):
        assert issubclass(NodeNotFoundError, KeyError)
        error = NodeNotFoundError(42)
        assert error.node == 42
        assert "42" in str(error)

    def test_edge_not_found_carries_edge(self):
        error = EdgeNotFoundError("a", "b")
        assert error.edge == ("a", "b")

    def test_solver_budget_carries_bounds(self):
        error = SolverBudgetExceeded(10.0, 25.0)
        assert error.lower_bound == 10.0
        assert error.upper_bound == 25.0
        assert "10" in str(error) and "25" in str(error)

    def test_parse_error_line_number(self):
        error = ParseError("bad token", line_number=7)
        assert "line 7" in str(error)
        assert error.line_number == 7

    def test_parse_error_without_line(self):
        error = ParseError("bad file")
        assert error.line_number is None
        assert "bad file" in str(error)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise InvalidQueryError("nope")
