"""Tests for the landmark distance oracle."""

import random

import pytest

from helpers import random_connected_graph
from repro.errors import GraphError
from repro.graphs.landmarks import LandmarkIndex
from repro.graphs.generators import barabasi_albert, connectify, path_graph, star_graph
from repro.graphs.traversal import bfs_distances
from repro.graphs.wiener import wiener_index


class TestConstruction:
    def test_degree_strategy_picks_hubs(self):
        index = LandmarkIndex(star_graph(8), num_landmarks=1)
        assert index.landmarks == [0]

    def test_random_strategy(self):
        g = path_graph(20)
        index = LandmarkIndex(g, num_landmarks=5, strategy="random",
                              rng=random.Random(1))
        assert len(index) == 5
        assert len(set(index.landmarks)) == 5

    def test_landmark_count_capped(self):
        index = LandmarkIndex(path_graph(3), num_landmarks=10)
        assert len(index) == 3

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            LandmarkIndex(path_graph(3), num_landmarks=0)
        with pytest.raises(GraphError):
            LandmarkIndex(path_graph(3), strategy="psychic")


class TestEstimates:
    def test_upper_and_lower_bracket_truth(self):
        g = random_connected_graph(80, 0.06, 21)
        index = LandmarkIndex(g, num_landmarks=8)
        nodes = sorted(g.nodes())
        rng = random.Random(3)
        for _ in range(30):
            u, v = rng.sample(nodes, 2)
            true = bfs_distances(g, u)[v]
            assert index.lower_bound(u, v) <= true <= index.estimate(u, v)

    def test_exact_through_landmark(self):
        g = star_graph(6)
        index = LandmarkIndex(g, num_landmarks=1)  # the hub
        assert index.estimate(1, 2) == 2.0  # exact: hub on every path

    def test_same_node_zero(self):
        index = LandmarkIndex(path_graph(5), num_landmarks=2)
        assert index.estimate(2, 2) == 0.0
        assert index.lower_bound(2, 2) == 0.0

    def test_estimate_many(self):
        g = path_graph(6)
        index = LandmarkIndex(g, num_landmarks=2)
        values = index.estimate_many([(0, 5), (1, 2)])
        assert len(values) == 2
        assert values[0] >= 5

    def test_hub_landmarks_accurate_on_scale_free(self):
        rng = random.Random(5)
        g = connectify(barabasi_albert(300, 3, rng=rng), rng=rng)
        index = LandmarkIndex(g, num_landmarks=12)
        nodes = sorted(g.nodes())
        errors = []
        for _ in range(40):
            u, v = rng.sample(nodes, 2)
            true = bfs_distances(g, u)[v]
            errors.append(index.estimate(u, v) - true)
        # Hub landmarks should be exact for a solid share of pairs.
        assert sum(1 for e in errors if e == 0) >= len(errors) // 3


class TestWienerEstimate:
    def test_upper_bounds_true_wiener(self):
        g = random_connected_graph(50, 0.1, 22)
        index = LandmarkIndex(g, num_landmarks=10)
        assert index.wiener_estimate() >= wiener_index(g) - 1e-9

    def test_sampled_version_close_to_full(self):
        g = random_connected_graph(60, 0.1, 23)
        index = LandmarkIndex(g, num_landmarks=10)
        full = index.wiener_estimate()
        sampled = index.wiener_estimate(sample_pairs=500,
                                        rng=random.Random(0))
        assert sampled == pytest.approx(full, rel=0.3)

    def test_subset(self):
        g = path_graph(10)
        index = LandmarkIndex(g, num_landmarks=3)
        assert index.wiener_estimate(nodes=[0, 1]) >= 1.0

    def test_tiny(self):
        index = LandmarkIndex(path_graph(4), num_landmarks=2)
        assert index.wiener_estimate(nodes=[2]) == 0.0
