"""Tests for the landmark distance oracle."""

import math
import random

import pytest

from helpers import random_connected_graph, random_weighted_graph
from repro.errors import GraphError
from repro.graphs.csr import HAS_NUMPY
from repro.graphs.graph import WeightedGraph
from repro.graphs.landmarks import LandmarkIndex
from repro.graphs.generators import barabasi_albert, connectify, erdos_renyi, path_graph, star_graph
from repro.graphs.traversal import bfs_distances, dijkstra
from repro.graphs.wiener import wiener_index


class TestConstruction:
    def test_degree_strategy_picks_hubs(self):
        index = LandmarkIndex(star_graph(8), num_landmarks=1)
        assert index.landmarks == [0]

    def test_random_strategy(self):
        g = path_graph(20)
        index = LandmarkIndex(g, num_landmarks=5, strategy="random",
                              rng=random.Random(1))
        assert len(index) == 5
        assert len(set(index.landmarks)) == 5

    def test_landmark_count_capped(self):
        index = LandmarkIndex(path_graph(3), num_landmarks=10)
        assert len(index) == 3

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            LandmarkIndex(path_graph(3), num_landmarks=0)
        with pytest.raises(GraphError):
            LandmarkIndex(path_graph(3), strategy="psychic")


class TestEstimates:
    def test_upper_and_lower_bracket_truth(self):
        g = random_connected_graph(80, 0.06, 21)
        index = LandmarkIndex(g, num_landmarks=8)
        nodes = sorted(g.nodes())
        rng = random.Random(3)
        for _ in range(30):
            u, v = rng.sample(nodes, 2)
            true = bfs_distances(g, u)[v]
            assert index.lower_bound(u, v) <= true <= index.estimate(u, v)

    def test_exact_through_landmark(self):
        g = star_graph(6)
        index = LandmarkIndex(g, num_landmarks=1)  # the hub
        assert index.estimate(1, 2) == 2.0  # exact: hub on every path

    def test_same_node_zero(self):
        index = LandmarkIndex(path_graph(5), num_landmarks=2)
        assert index.estimate(2, 2) == 0.0
        assert index.lower_bound(2, 2) == 0.0

    def test_estimate_many(self):
        g = path_graph(6)
        index = LandmarkIndex(g, num_landmarks=2)
        values = index.estimate_many([(0, 5), (1, 2)])
        assert len(values) == 2
        assert values[0] >= 5

    def test_hub_landmarks_accurate_on_scale_free(self):
        rng = random.Random(5)
        g = connectify(barabasi_albert(300, 3, rng=rng), rng=rng)
        index = LandmarkIndex(g, num_landmarks=12)
        nodes = sorted(g.nodes())
        errors = []
        for _ in range(40):
            u, v = rng.sample(nodes, 2)
            true = bfs_distances(g, u)[v]
            errors.append(index.estimate(u, v) - true)
        # Hub landmarks should be exact for a solid share of pairs.
        assert sum(1 for e in errors if e == 0) >= len(errors) // 3


def _disconnected_graph(seed: int, extra_components: int = 3):
    """A random graph plus several components no landmark will sit in.

    Degree landmarks land in the dense main component, so every vertex of
    the small satellite components is unreachable from every landmark —
    the disconnected regime the upper-bound contract must survive.
    """
    rng = random.Random(seed)
    graph = connectify(erdos_renyi(40, 0.12, rng=rng), rng=rng)
    satellites = []
    base = 10_000
    for c in range(extra_components):
        u, v = base + 2 * c, base + 2 * c + 1
        graph.add_edge(u, v)
        satellites.extend([u, v])
    return graph, satellites


class TestDisconnectedContract:
    """The upper-bound contract on vertices unreachable from every
    landmark: estimates are ``math.inf``, never an exception — in the
    dict table build and in the CSR one alike."""

    def _index(self, graph, use_csr: bool, strategy: str = "degree"):
        if use_csr:
            from repro.graphs.csr import CSRGraph

            return LandmarkIndex(
                graph, num_landmarks=4, strategy=strategy,
                rng=random.Random(0), csr=CSRGraph.from_graph(graph),
            )
        return LandmarkIndex(
            graph, num_landmarks=4, strategy=strategy, rng=random.Random(0)
        )

    @pytest.mark.parametrize("use_csr", [
        False,
        pytest.param(True, marks=pytest.mark.skipif(
            not HAS_NUMPY, reason="CSR table build needs numpy")),
    ])
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_estimate_is_inf_never_raises(self, use_csr, seed):
        graph, satellites = _disconnected_graph(seed)
        index = self._index(graph, use_csr)
        main = sorted(n for n in graph.nodes() if n not in set(satellites))
        assert all(landmark in main for landmark in index.landmarks)
        rng = random.Random(seed)
        for _ in range(20):
            u = rng.choice(main)
            v = rng.choice(satellites)
            assert index.estimate(u, v) == math.inf
            assert index.estimate(v, u) == math.inf
            # inf is still a valid *upper* bound; the lower bound falls
            # back to the trivial 0.0 rather than raising either.
            assert index.lower_bound(u, v) == 0.0
        # pairs inside a landmark-less component are just as blind
        assert index.estimate(satellites[0], satellites[1]) == math.inf
        # ...and same-vertex stays exact even with no landmark coverage
        assert index.estimate(satellites[0], satellites[0]) == 0.0
        # reachable pairs keep returning finite floats
        u, v = main[0], main[-1]
        value = index.estimate(u, v)
        assert isinstance(value, float) and math.isfinite(value)

    @pytest.mark.parametrize("use_csr", [
        False,
        pytest.param(True, marks=pytest.mark.skipif(
            not HAS_NUMPY, reason="CSR table build needs numpy")),
    ])
    def test_wiener_estimate_propagates_inf(self, use_csr):
        graph, satellites = _disconnected_graph(404)
        index = self._index(graph, use_csr)
        main = sorted(n for n in graph.nodes() if n not in set(satellites))
        mixed = main[:3] + satellites[:2]
        # full enumeration and the pair-sampled path both report inf
        assert index.wiener_estimate(mixed) == math.inf
        assert index.wiener_estimate(
            mixed, sample_pairs=4, rng=random.Random(1)
        ) == math.inf
        assert index.wiener_estimate() == math.inf  # whole disconnected graph
        # an all-reachable subset stays finite
        assert math.isfinite(index.wiener_estimate(main[:5]))

    @pytest.mark.parametrize("use_csr", [
        False,
        pytest.param(True, marks=pytest.mark.skipif(
            not HAS_NUMPY, reason="CSR table build needs numpy")),
    ])
    def test_dict_and_csr_builds_agree(self, use_csr):
        """Both table builds hold the same distances, so the estimates —
        finite and infinite — are identical."""
        graph, satellites = _disconnected_graph(505)
        reference = self._index(graph, False)
        index = self._index(graph, use_csr)
        nodes = sorted(graph.nodes())
        rng = random.Random(5)
        for _ in range(30):
            u, v = rng.sample(nodes, 2)
            assert index.estimate(u, v) == reference.estimate(u, v)
            assert index.lower_bound(u, v) == reference.lower_bound(u, v)


class TestWeightedTables:
    """The weight-aware table regression: Dijkstra tables on weighted
    graphs, so the triangle bounds bracket the *weighted* metric.  An
    earlier revision silently ran hop-count BFS on WeightedGraph inputs,
    putting the "bounds" on the wrong side of the truth."""

    @pytest.mark.parametrize("seed", [11, 22, 33, 44])
    def test_bounds_bracket_weighted_truth(self, seed):
        g = random_weighted_graph(40, 120, seed=seed)
        index = LandmarkIndex(g, num_landmarks=6)
        nodes = sorted(g.nodes())
        rng = random.Random(seed)
        for _ in range(40):
            u, v = rng.sample(nodes, 2)
            true = dijkstra(g, u)[0].get(v)
            if true is None:
                continue
            assert index.lower_bound(u, v) <= true + 1e-9
            assert index.estimate(u, v) >= true - 1e-9

    def test_hop_counts_would_violate_the_bracket(self):
        """The concrete failure mode the fix removes: on a path with heavy
        edges, hop counts under-report the metric, so the old hop-count
        'upper bound' would fall below the true distance."""
        g = WeightedGraph()
        for i in range(5):
            g.add_edge(i, i + 1, weight=3.0)
        index = LandmarkIndex(g, num_landmarks=2)
        truth = dijkstra(g, 0)[0][5]
        assert truth == 15.0
        assert index.estimate(0, 5) >= truth  # hop count would say 5
        assert index.lower_bound(0, 5) <= truth

    def test_unit_weight_weighted_graph_matches_bfs(self):
        """All-ones weights are metrically unweighted: the tables must
        equal BFS hop counts (and stay integer-typed)."""
        plain = random_connected_graph(30, 0.15, 77)
        unit = WeightedGraph()
        for node in plain.nodes():
            unit.add_node(node)
        for u, v in plain.edges():
            unit.add_edge(u, v, weight=1)
        index = LandmarkIndex(unit, num_landmarks=4)
        reference = LandmarkIndex(plain, num_landmarks=4)
        assert index.landmarks == reference.landmarks
        for landmark in index.landmarks:
            hops = bfs_distances(plain, landmark)
            table = index._tables[landmark]
            assert table == hops
            assert all(isinstance(d, int) for d in table.values())


class TestVectorizedMany:
    """estimate_many / lower_bound_many are pinned element-wise to the
    scalar methods — including same-node pairs and pairs no landmark
    covers."""

    def _pairs(self, graph, seed, count=60):
        rng = random.Random(seed)
        nodes = sorted(graph.nodes(), key=repr)
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(count)]
        pairs.extend((node, node) for node in nodes[:5])
        return pairs

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_scalar_on_connected(self, seed):
        g = random_connected_graph(70, 0.07, seed)
        index = LandmarkIndex(g, num_landmarks=7)
        pairs = self._pairs(g, seed)
        assert index.estimate_many(pairs) == [
            index.estimate(u, v) for u, v in pairs
        ]
        assert index.lower_bound_many(pairs) == [
            index.lower_bound(u, v) for u, v in pairs
        ]

    def test_matches_scalar_on_disconnected(self):
        graph, satellites = _disconnected_graph(606)
        index = LandmarkIndex(graph, num_landmarks=4)
        main = sorted(n for n in graph.nodes() if n not in set(satellites))
        pairs = (
            [(main[0], s) for s in satellites]
            + [(satellites[0], satellites[1])]
            + [(main[0], main[-1]), (main[3], main[3])]
        )
        assert index.estimate_many(pairs) == [
            index.estimate(u, v) for u, v in pairs
        ]
        assert index.lower_bound_many(pairs) == [
            index.lower_bound(u, v) for u, v in pairs
        ]

    def test_weighted_matches_scalar(self):
        g = random_weighted_graph(35, 100, seed=9)
        index = LandmarkIndex(g, num_landmarks=5)
        pairs = self._pairs(g, 9, count=40)
        assert index.estimate_many(pairs) == [
            index.estimate(u, v) for u, v in pairs
        ]
        assert index.lower_bound_many(pairs) == [
            index.lower_bound(u, v) for u, v in pairs
        ]

    def test_empty_pairs(self):
        index = LandmarkIndex(path_graph(6), num_landmarks=2)
        assert index.estimate_many([]) == []
        assert index.lower_bound_many([]) == []


class TestReprAndCSROnly:
    def test_repr_reports_post_clamp_count(self):
        index = LandmarkIndex(path_graph(3), num_landmarks=10)
        assert "landmarks=3" in repr(index)  # built 3, not the 10 asked for

    @pytest.mark.skipif(not HAS_NUMPY, reason="CSR construction needs numpy")
    def test_csr_only_construction_matches_graph_build(self):
        from repro.graphs.csr import CSRGraph

        g = random_connected_graph(50, 0.1, 88)
        bare = LandmarkIndex(csr=CSRGraph.from_graph(g), num_landmarks=5)
        full = LandmarkIndex(g, num_landmarks=5)
        assert bare.landmarks == full.landmarks
        rng = random.Random(8)
        nodes = sorted(g.nodes())
        for _ in range(30):
            u, v = rng.sample(nodes, 2)
            assert bare.estimate(u, v) == full.estimate(u, v)
            assert bare.lower_bound(u, v) == full.lower_bound(u, v)
        assert f"|V|={g.num_nodes}" in repr(bare)

    def test_rejects_neither_graph_nor_csr(self):
        with pytest.raises(GraphError):
            LandmarkIndex(None, num_landmarks=2)


class TestWienerEstimate:
    def test_upper_bounds_true_wiener(self):
        g = random_connected_graph(50, 0.1, 22)
        index = LandmarkIndex(g, num_landmarks=10)
        assert index.wiener_estimate() >= wiener_index(g) - 1e-9

    def test_sampled_version_close_to_full(self):
        g = random_connected_graph(60, 0.1, 23)
        index = LandmarkIndex(g, num_landmarks=10)
        full = index.wiener_estimate()
        sampled = index.wiener_estimate(sample_pairs=500,
                                        rng=random.Random(0))
        assert sampled == pytest.approx(full, rel=0.3)

    def test_subset(self):
        g = path_graph(10)
        index = LandmarkIndex(g, num_landmarks=3)
        assert index.wiener_estimate(nodes=[0, 1]) >= 1.0

    def test_tiny(self):
        index = LandmarkIndex(path_graph(4), num_landmarks=2)
        assert index.wiener_estimate(nodes=[2]) == 0.0
