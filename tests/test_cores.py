"""Tests for k-core decomposition and the ctp equivalence."""

import random

import pytest

from helpers import random_connected_graph, to_networkx
from repro.baselines.ctp import ctp_connector, greedy_peel
from repro.graphs.cores import core_numbers, k_core_nodes, max_core_component_with
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph


class TestCoreNumbers:
    def test_path(self):
        cores = core_numbers(path_graph(5))
        assert all(core == 1 for core in cores.values())

    def test_complete_graph(self):
        cores = core_numbers(complete_graph(5))
        assert all(core == 4 for core in cores.values())

    def test_star(self):
        cores = core_numbers(star_graph(6))
        assert all(core == 1 for core in cores.values())

    def test_clique_with_tail(self):
        g = complete_graph(4)
        g.add_edge(3, 4)
        g.add_edge(4, 5)
        cores = core_numbers(g)
        assert cores[0] == cores[1] == cores[2] == cores[3] == 3
        assert cores[4] == cores[5] == 1

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}

    def test_isolated_vertices(self):
        g = Graph([(0, 1)], nodes=[2])
        cores = core_numbers(g)
        assert cores[2] == 0
        assert cores[0] == cores[1] == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        import networkx as nx

        g = random_connected_graph(60, 0.1, seed + 880)
        assert core_numbers(g) == nx.core_number(to_networkx(g))

    @pytest.mark.parametrize("seed", range(3))
    def test_definition(self, seed):
        """Every vertex of the k-core has >= k neighbors inside it."""
        g = random_connected_graph(50, 0.12, seed + 890)
        cores = core_numbers(g)
        for k in range(max(cores.values()) + 1):
            members = k_core_nodes(g, k, cores)
            for node in members:
                inside = sum(1 for v in g.neighbors(node) if v in members)
                assert inside >= k


class TestMaxCoreComponent:
    def test_dense_pocket_found(self):
        g = complete_graph(5)  # nodes 0..4, core 4
        g.add_edge(4, 5)
        g.add_edge(5, 6)
        nodes, k = max_core_component_with(g, [0, 1])
        assert nodes == set(range(5))
        assert k == 4

    def test_query_limits_core(self):
        g = complete_graph(5)
        g.add_edge(4, 5)
        nodes, k = max_core_component_with(g, [0, 5])
        # Vertex 5 only survives in the 1-core.
        assert 5 in nodes
        assert k == 1

    def test_min_degree_achieved(self):
        for seed in range(4):
            g = random_connected_graph(40, 0.15, seed + 900)
            rng = random.Random(seed)
            query = rng.sample(sorted(g.nodes()), 3)
            nodes, k = max_core_component_with(g, query)
            sub = g.subgraph(nodes)
            assert min(sub.degree(v) for v in sub.nodes()) >= k

    def test_matches_greedy_peel_min_degree(self):
        """The k-core shortcut achieves the same (optimal) min degree as
        the literal Sozio-Gionis peeling."""
        for seed in range(4):
            g = random_connected_graph(30, 0.2, seed + 910)
            rng = random.Random(seed)
            query = frozenset(rng.sample(sorted(g.nodes()), 3))
            core_nodes, k = max_core_component_with(g, query)
            peel_nodes = greedy_peel(g.copy(), query)
            peel_sub = g.subgraph(peel_nodes)
            peel_k = min(peel_sub.degree(v) for v in peel_sub.nodes())
            assert k == peel_k

    def test_ctp_metadata_exposes_min_degree(self):
        g = random_connected_graph(40, 0.15, 920)
        query = sorted(g.nodes())[:3]
        result = ctp_connector(g, query)
        assert result.metadata["min_degree"] >= 0
