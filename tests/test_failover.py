"""Chaos and self-healing tests for the replicated shard ring.

The replication surface of :mod:`repro.core.sharded` changes *when* the
router gives up, never *what* it returns — so every chaos scenario here
(kill, SIGSTOP-hang, partition one replica mid-stream) has a ground
truth to diff against: the one-shot solver.  Alongside the chaos suite:
the :mod:`repro.core.retry` backoff unit tests, the transport error
taxonomy (connect-time vs in-flight), heartbeats and liveness probing,
rolling replace, the daemon health surface (``ping`` op, host stats,
``repro ping``), and the bounded-teardown regression against a SIGSTOP'd
daemon.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import pytest

from helpers import (
    assert_connector_identical,
    assert_no_orphan_processes,
    random_connected_graph,
    random_query_batch,
    spawn_shard_host,
)
from repro.core.gateway import service_health
from repro.core.retry import BackoffPolicy, RetrySchedule, call_with_backoff
from repro.core.service import ConnectorService
from repro.core.sharded import (
    ShardConnectError,
    ShardLinkError,
    ShardTransportError,
    ShardedConnectorService,
    request_digest,
)
from repro.core.options import SolveOptions
from repro.serving.protocol import decode_line, encode_line
from repro.serving.remote import (
    RemoteShardTransport,
    ShardHostServer,
    ping_shard_host,
    shutdown_shard_host,
)
import random


#: Fast revival pacing for tests: real deployments wait seconds, tests must not.
FAST_BACKOFF = BackoffPolicy(base_delay=0.05, max_delay=0.2, jitter=0.0)


def small_graph(seed: int = 11):
    return random_connected_graph(48, 0.09, seed)


def make_sharded(graph, **kwargs):
    kwargs.setdefault("backoff", FAST_BACKOFF)
    kwargs.setdefault("heartbeat_interval", None)
    return ShardedConnectorService(graph, **kwargs)


# ----------------------------------------------------------------------
# core/retry.py
# ----------------------------------------------------------------------
class TestBackoffPolicy:
    def test_exponential_growth_to_cap(self):
        policy = BackoffPolicy(base_delay=0.5, max_delay=4.0, multiplier=2.0)
        assert [policy.delay(k) for k in range(5)] == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_jitter_stays_within_band(self):
        policy = BackoffPolicy(base_delay=1.0, max_delay=1.0, jitter=0.25)
        stream = policy.delays(seed=7)
        for _ in range(50):
            delay = next(stream)
            assert 0.75 <= delay <= 1.25

    def test_jitter_zero_is_exact(self):
        policy = BackoffPolicy(base_delay=0.5, max_delay=2.0, jitter=0.0)
        stream = policy.delays()
        assert [next(stream) for _ in range(4)] == [0.5, 1.0, 2.0, 2.0]

    def test_seeded_stream_is_deterministic(self):
        policy = BackoffPolicy()
        a, b = policy.delays(seed=3), policy.delays(seed=3)
        assert [next(a) for _ in range(6)] == [next(b) for _ in range(6)]

    def test_delays_never_negative(self):
        policy = BackoffPolicy(base_delay=0.01, jitter=1.0)
        stream = policy.delays(seed=1)
        assert all(next(stream) >= 0.0 for _ in range(100))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_delay": 0.0},
            {"base_delay": -1.0},
            {"max_delay": 0.1, "base_delay": 0.5},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_negative_attempt_is_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BackoffPolicy().delay(-1)


class TestRetrySchedule:
    def test_fresh_schedule_is_due_immediately(self):
        assert RetrySchedule(FAST_BACKOFF).due()

    def test_initial_delay_books_the_first_wait(self):
        clock = iter([100.0, 100.0, 200.0]).__next__
        schedule = RetrySchedule(
            BackoffPolicy(base_delay=5.0, jitter=0.0),
            initial_delay=True,
            clock=clock,
        )
        assert not schedule.due()  # at t=100: next attempt is t=105
        assert schedule.due()  # at t=200

    def test_record_failure_advances_the_schedule(self):
        schedule = RetrySchedule(
            BackoffPolicy(base_delay=2.0, multiplier=2.0, jitter=0.0),
            clock=lambda: 50.0,
        )
        schedule.record_failure()
        assert schedule.attempts == 1
        assert schedule.next_attempt == 52.0
        assert not schedule.due(now=51.9)
        assert schedule.due(now=52.0)
        schedule.record_failure(now=52.0)
        assert schedule.next_attempt == 56.0  # 2.0 * 2


class TestCallWithBackoff:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "done"

        result = call_with_backoff(
            flaky,
            policy=BackoffPolicy(base_delay=0.5, jitter=0.0),
            retry_on=(OSError,),
            sleep=slept.append,
        )
        assert result == "done"
        assert slept == [0.5, 1.0]

    def test_raises_the_last_failure_after_max_attempts(self):
        with pytest.raises(OSError, match="still down"):
            call_with_backoff(
                lambda: (_ for _ in ()).throw(OSError("still down")),
                policy=FAST_BACKOFF,
                retry_on=(OSError,),
                max_attempts=3,
                sleep=lambda _: None,
            )

    def test_unlisted_exceptions_propagate_immediately(self):
        calls = {"n": 0}

        def typed():
            calls["n"] += 1
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            call_with_backoff(typed, retry_on=(OSError,), sleep=lambda _: None)
        assert calls["n"] == 1


# ----------------------------------------------------------------------
# A scripted peer for taxonomy tests: just enough protocol, on demand.
# ----------------------------------------------------------------------
class _ScriptedHost:
    """A one-connection-at-a-time TCP peer with a scripted reply policy.

    ``hello_ok=True`` answers the handshake like a real shard host;
    ``sweep_reply`` (bytes or None) is sent verbatim for every later
    line — letting tests forge unparsable and pickle-skewed replies, or
    hang up mid-stream (``None`` closes after the handshake's first
    sweep arrives).
    """

    def __init__(self, *, hello_ok=True, sweep_reply=b'{"ok": true}\n',
                 banner=None):
        self._hello_ok = hello_ok
        self._sweep_reply = sweep_reply
        self._banner = banner
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        try:
            while True:
                conn, _ = self._listener.accept()
                try:
                    self._serve_connection(conn)
                finally:
                    # makefile() pins the socket through _io_refs, so an
                    # explicit shutdown is what actually puts the FIN on
                    # the wire (and RSTs anything the peer keeps sending).
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    conn.close()
        except OSError:
            pass  # listener closed

    def _serve_connection(self, conn):
        with conn.makefile("rb") as reader:
            if self._banner is not None:
                conn.sendall(self._banner)
                return
            hello = reader.readline()
            if not hello:
                return
            message = decode_line(hello)
            conn.sendall(encode_line(
                {"ok": self._hello_ok, "id": message.get("id"),
                 "error": "scripted refusal"}
            ))
            if not self._hello_ok:
                return
            while reader.readline():
                if self._sweep_reply is None:
                    return  # hang up mid-stream
                conn.sendall(self._sweep_reply)

    def close(self):
        self._listener.close()


# ----------------------------------------------------------------------
# Transport error taxonomy: connect-time vs in-flight
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_refused_connect_is_a_connect_error(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(ShardConnectError, match="cannot connect"):
            RemoteShardTransport(0, "127.0.0.1", port, digest="d")

    def test_refused_handshake_is_a_connect_error(self):
        host = _ScriptedHost(hello_ok=False)
        try:
            with pytest.raises(ShardConnectError, match="refused the handshake"):
                RemoteShardTransport(0, "127.0.0.1", host.port, digest="d")
        finally:
            host.close()

    def test_digest_mismatch_is_a_connect_error(self):
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            with pytest.raises(ShardConnectError, match="digest mismatch"):
                RemoteShardTransport(
                    0, "127.0.0.1", server.port, digest="not-the-digest"
                )

    def test_non_protocol_peer_is_a_connect_error(self):
        host = _ScriptedHost(banner=b"HTTP/1.1 400 Bad Request\r\n\r\n")
        try:
            with pytest.raises(ShardConnectError, match="non-protocol"):
                RemoteShardTransport(0, "127.0.0.1", host.port, digest="d")
        finally:
            host.close()

    def test_mid_write_reset_is_a_link_error(self):
        host = _ScriptedHost(sweep_reply=None)  # hangs up on the first sweep
        options = SolveOptions()
        try:
            transport = RemoteShardTransport(
                0, "127.0.0.1", host.port, digest="d"
            )
            # The peer's FIN/RST lands asynchronously; keep writing until
            # the OS surfaces it (EPIPE/ECONNRESET), typed as in-flight.
            with pytest.raises(ShardLinkError, match="mid-write"):
                for request_id in range(200):
                    transport.submit(request_id, (1, 2), options)
                    time.sleep(0.005)
            transport.stop()
        finally:
            host.close()

    def test_unparsable_reply_is_a_link_error(self):
        host = _ScriptedHost(sweep_reply=b"certainly not json\n")
        try:
            transport = RemoteShardTransport(
                0, "127.0.0.1", host.port, digest="d"
            )
            transport.submit_stats(7)
            deadline = time.monotonic() + 5.0
            with pytest.raises(ShardLinkError, match="unparsable"):
                while time.monotonic() < deadline:
                    transport.drain()
                    time.sleep(0.01)
            transport.stop()
        finally:
            host.close()

    def test_pickle_skewed_reply_is_a_link_error(self):
        # ok=true with an outcome field that is not a loadable pickle:
        # protocol sync is gone even though the JSON envelope parsed.
        host = _ScriptedHost(
            sweep_reply=b'{"ok": true, "id": 7, "outcome": "AAAA"}\n'
        )
        try:
            transport = RemoteShardTransport(
                0, "127.0.0.1", host.port, digest="d"
            )
            transport.submit_stats(7)
            deadline = time.monotonic() + 5.0
            with pytest.raises(ShardLinkError, match="unparsable"):
                while time.monotonic() < deadline:
                    transport.drain()
                    time.sleep(0.01)
            transport.stop()
        finally:
            host.close()

    def test_submit_on_a_stopped_link_is_a_link_error(self):
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            transport = RemoteShardTransport(
                0, "127.0.0.1", server.port, digest=service.index_digest()
            )
            transport.stop()
            with pytest.raises(ShardLinkError, match="closed"):
                transport.submit_stats(0)
            with pytest.raises(ShardLinkError, match="closed"):
                transport.drain()

    def test_taxonomy_is_rooted_at_shard_transport_error(self):
        assert issubclass(ShardConnectError, ShardTransportError)
        assert issubclass(ShardLinkError, ShardTransportError)
        assert issubclass(ShardTransportError, RuntimeError)


# ----------------------------------------------------------------------
# Daemon health surface: host stats, ping op, repro ping
# ----------------------------------------------------------------------
class TestHostStats:
    def test_stats_op_carries_daemon_health_over_a_live_connection(self):
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            with socket.create_connection(("127.0.0.1", server.port)) as sock:
                reader = sock.makefile("rb")
                sock.sendall(encode_line(
                    {"op": "hello", "digest": service.index_digest(), "id": 0}
                ))
                assert decode_line(reader.readline())["ok"]
                sock.sendall(encode_line({"op": "stats", "id": 1}))
                reply = decode_line(reader.readline())
                assert reply["ok"]
                first = reply["host"]
                assert first["uptime_seconds"] >= 0.0
                assert first["sweeps_served"] == 0
                assert first["connections_active"] == 1

                # A served sweep and a second connection move the counters.
                transport = RemoteShardTransport(
                    0, "127.0.0.1", server.port,
                    digest=service.index_digest(),
                )
                nodes = sorted(service.graph.nodes())[:2]
                transport.submit(5, tuple(nodes), SolveOptions())
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if transport.drain():
                        break
                    time.sleep(0.01)
                sock.sendall(encode_line({"op": "stats", "id": 2}))
                second = decode_line(reader.readline())["host"]
                assert second["sweeps_served"] == 1
                assert second["connections_active"] == 2
                assert second["uptime_seconds"] >= first["uptime_seconds"]
                transport.stop()

    def test_service_stats_report_uptime(self):
        service = ConnectorService(small_graph())
        first = service.stats().uptime_seconds
        assert first >= 0.0
        time.sleep(0.02)
        assert service.stats().uptime_seconds > first


class TestPingShardHost:
    def test_ping_reports_rtt_and_stats(self):
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            bare = ping_shard_host("127.0.0.1", server.port)
            assert bare["rtt_seconds"] > 0.0
            assert "stats" not in bare
            full = ping_shard_host(
                "127.0.0.1", server.port, with_stats=True
            )
            assert full["stats"]["queries_served"] == 0
            assert full["host"]["connections_active"] >= 1

    def test_ping_unreachable_raises_connect_error(self):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ShardConnectError, match="cannot connect"):
            ping_shard_host("127.0.0.1", port, timeout=1.0)

    def test_ping_needs_no_handshake(self):
        # The whole point: a supervisor without the graph can still probe.
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            report = ping_shard_host("127.0.0.1", server.port)
            assert report["rtt_seconds"] < 5.0


class TestPingCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_ping_text_output(self, capsys):
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            code, out, _ = self.run_cli(
                ["ping", f"127.0.0.1:{server.port}"], capsys
            )
        assert code == 0
        assert "pong in" in out
        assert "0 sweeps served" in out

    def test_ping_json_output(self, capsys):
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            code, out, _ = self.run_cli(
                ["ping", f"127.0.0.1:{server.port}", "--json"], capsys
            )
        assert code == 0
        document = json.loads(out)
        assert document["ok"] is True
        assert document["rtt_seconds"] > 0.0
        assert document["host"]["sweeps_served"] == 0

    def test_ping_unreachable_exits_one(self, capsys):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code, _, err = self.run_cli(["ping", f"127.0.0.1:{port}"], capsys)
        assert code == 1
        assert "cannot connect" in err

    def test_ping_unreachable_json_exits_one(self, capsys):
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code, out, _ = self.run_cli(
            ["ping", f"127.0.0.1:{port}", "--json"], capsys
        )
        assert code == 1
        assert json.loads(out)["ok"] is False

    @pytest.mark.parametrize(
        "argv",
        [
            ["ping", "local"],
            ["ping", "no-port-here"],
            ["ping", "127.0.0.1:1", "--timeout", "0"],
        ],
    )
    def test_ping_usage_errors_exit_two(self, argv, capsys):
        code, _, err = self.run_cli(argv, capsys)
        assert code == 2
        assert err

    @pytest.mark.parametrize(
        "argv",
        [
            ["query", "email", "1", "2", "--shards", "2", "--replication", "3"],
            ["query", "email", "1", "2", "--replication", "2"],
            ["query", "email", "1", "2", "--shards", "2", "--replication", "0"],
            ["serve", "email", "--shards", "local", "--replication", "2"],
        ],
    )
    def test_bad_replication_is_a_usage_error(self, argv, capsys):
        code, _, err = self.run_cli(argv, capsys)
        assert code == 2
        assert "--replication" in err


# ----------------------------------------------------------------------
# Replica placement
# ----------------------------------------------------------------------
class TestReplicaPlacement:
    def test_replicas_are_distinct_and_deterministic(self):
        from repro.core.sharded import _HashRing

        ring = _HashRing(range(5))
        options = SolveOptions()
        for seed in range(30):
            digest = request_digest(frozenset({seed, seed + 100}), options)
            replicas = ring.replicas(digest, 3)
            assert len(replicas) == len(set(replicas)) == 3
            assert replicas == ring.replicas(digest, 3)
            assert replicas[0] == ring.lookup(digest)

    def test_replication_one_routes_like_the_unreplicated_ring(self):
        graph = small_graph()
        with make_sharded(graph, n_shards=3) as plain:
            with make_sharded(graph, n_shards=3, replication=1) as replicated:
                for seed in range(20):
                    query = random.Random(seed).sample(
                        sorted(graph.nodes()), 3
                    )
                    assert plain.shard_of(query) == replicated.shard_of(query)

    def test_preferred_replicas_fan_out_across_the_group(self):
        # Distinct keys sharing a replica group must not all prefer the
        # same member — the digest rotation spreads the reads.
        graph = small_graph()
        rng = random.Random(5)
        with make_sharded(graph, n_shards=3, replication=3) as service:
            preferred = {
                service.shard_of(rng.sample(sorted(graph.nodes()), 3))
                for _ in range(40)
            }
        assert len(preferred) > 1

    def test_placement_ignores_liveness(self):
        graph = small_graph()
        with make_sharded(graph, n_shards=3, replication=2) as service:
            query = sorted(graph.nodes())[:3]
            before = service.shard_of(query)
            victim = service._shards[before]
            if victim.kind == "pipe":
                victim.process.terminate()
                victim.process.join(5.0)
            service.solve(query)  # fails over; placement must not move
            assert service.shard_of(query) == before

    def test_replication_must_fit_the_slot_count(self):
        with pytest.raises(ValueError, match="replication=3"):
            ShardedConnectorService(small_graph(), n_shards=2, replication=3)
        with pytest.raises(ValueError, match="at least 1"):
            ShardedConnectorService(small_graph(), n_shards=2, replication=0)


# ----------------------------------------------------------------------
# Chaos: kill / hang / partition one replica mid-stream
# ----------------------------------------------------------------------
class TestChaosKill:
    def test_killed_pipe_replica_fails_over_bit_identically(self):
        graph = small_graph(23)
        rng = random.Random(23)
        queries = random_query_batch(graph, rng, 40)
        reference = ConnectorService(graph)
        with make_sharded(graph, n_shards=3, replication=2) as service:
            victim = service._shards[0]

            def kill():
                time.sleep(0.05)
                victim.process.terminate()

            threading.Thread(target=kill, daemon=True).start()
            results = service.solve_many(queries)
            for query, result in zip(queries, results):
                assert_connector_identical(result, reference.solve(query))
            stats = service.stats()
            assert stats.shards_failed >= 1
            assert stats.replication == 2
        assert_no_orphan_processes()

    def test_ring_heals_and_counts_reconnects(self):
        graph = small_graph(29)
        queries = random_query_batch(graph, random.Random(29), 12)
        with make_sharded(graph, n_shards=3, replication=2) as service:
            service._shards[1].process.terminate()
            service._shards[1].process.join(5.0)
            results = service.solve_many(queries)  # suspect path: dead worker
            assert len(results) == len(queries)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = service.stats()  # stats() heals due slots too
                if not stats.dead_shards:
                    break
                time.sleep(0.05)
            assert stats.dead_shards == ()
            assert stats.reconnects >= 1
            assert stats.shards_failed >= 1
            assert not stats.degraded
            # The healed ring serves — and identically.
            reference = ConnectorService(graph)
            for query in queries[:3]:
                assert_connector_identical(
                    service.solve(query), reference.solve(query)
                )
        assert_no_orphan_processes()

    def test_replication_one_preserves_close_on_death(self):
        graph = small_graph(31)
        queries = random_query_batch(graph, random.Random(31), 30)
        service = make_sharded(graph, n_shards=2, replication=1)
        victim = service._shards[0]

        def kill():
            time.sleep(0.05)
            victim.process.terminate()

        threading.Thread(target=kill, daemon=True).start()
        with pytest.raises(RuntimeError, match="died|closed"):
            service.solve_many(queries)
        with pytest.raises(RuntimeError, match="closed"):
            service.solve_many(queries[:1])
        assert_no_orphan_processes()

    def test_zero_live_replicas_fails_the_batch_and_closes(self):
        graph = random_connected_graph(30, 0.12, 37)
        queries = random_query_batch(graph, random.Random(37), 20)
        service = None
        hosts = []
        try:
            services = [ConnectorService(graph) for _ in range(2)]
            hosts = [ShardHostServer(s).start() for s in services]
            specs = [f"127.0.0.1:{h.port}" for h in hosts]
            service = make_sharded(graph, shards=specs, replication=2)
            service.solve_many(queries[:2])  # the ring serves while whole
            # Take down *both* replicas of every key range: close the
            # listeners (so revival attempts are refused) and cut the
            # established links (in-process servers keep their handler
            # threads, unlike a killed daemon).
            for host in hosts:
                host.close()
            for transport in list(service._shards.values()):
                transport._sock.shutdown(socket.SHUT_RDWR)
            with pytest.raises(RuntimeError, match="no live replicas"):
                service.solve_many(queries)
            # The replication>=2 contract only degrades to close-on-death
            # at zero live replicas — and then the service is closed.
            with pytest.raises(RuntimeError, match="closed"):
                service.solve_many(queries[:1])
        finally:
            if service is not None:
                service.close()
            for host in hosts:
                host.close()


class TestChaosRemote:
    def test_killed_daemon_fails_over_and_reconnects(self):
        # A mixed ring: one real daemon subprocess + two local shards.
        process, port = spawn_shard_host("email")
        service = None
        revived = None
        try:
            from repro.datasets import load_dataset

            graph = load_dataset("email")
            reference = ConnectorService(graph)
            rng = random.Random(41)
            queries = random_query_batch(graph, rng, 30)
            service = make_sharded(
                graph,
                shards=[f"127.0.0.1:{port}", "local", "local"],
                replication=2,
            )

            def kill():
                time.sleep(0.05)
                process.kill()

            threading.Thread(target=kill, daemon=True).start()
            results = service.solve_many(queries)
            process.communicate()
            for query, result in zip(queries, results):
                assert_connector_identical(result, reference.solve(query))
            stats = service.stats()
            assert stats.shards_failed >= 1

            # Heal: a fresh daemon on the same port lets the slot rejoin
            # through reconnect + the hello digest handshake.
            revived = ShardHostServer(
                ConnectorService(graph), "127.0.0.1", port
            ).start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = service.stats()
                if not stats.dead_shards:
                    break
                time.sleep(0.05)
            assert stats.dead_shards == ()
            assert stats.reconnects >= 1
            assert "socket" in stats.transports
            for query in queries[:2]:
                assert_connector_identical(
                    service.solve(query), reference.solve(query)
                )
        finally:
            if service is not None:
                service.close()
            if revived is not None:
                revived.close()
            process.kill()
            process.communicate()
        assert_no_orphan_processes()

    def test_sigstopped_daemon_is_probed_out_mid_batch(self):
        process, port = spawn_shard_host("email")
        service = None
        try:
            from repro.datasets import load_dataset

            graph = load_dataset("email")
            reference = ConnectorService(graph)
            queries = random_query_batch(graph, random.Random(43), 25)
            service = make_sharded(
                graph,
                shards=[f"127.0.0.1:{port}", "local", "local"],
                replication=2,
                liveness_deadline=1.0,
                probe_timeout=0.5,
            )

            def hang():
                time.sleep(0.05)
                os.kill(process.pid, signal.SIGSTOP)

            threading.Thread(target=hang, daemon=True).start()
            started = time.monotonic()
            results = service.solve_many(queries)
            elapsed = time.monotonic() - started
            for query, result in zip(queries, results):
                assert_connector_identical(result, reference.solve(query))
            # The hang was bounded by the liveness deadline, nowhere near
            # the ~60s TCP-keepalive bound it replaces.
            assert elapsed < 30.0
            assert service.stats().shards_failed >= 1
        finally:
            if service is not None:
                service.close()
            try:
                os.kill(process.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            process.kill()
            process.communicate()
        assert_no_orphan_processes()


class _PartitionProxy:
    """A TCP forwarder that can silently stop delivering (both ways).

    Models a network partition the way a router actually experiences it:
    sockets stay open, no FIN/RST arrives, bytes just stop — only an
    application-level liveness deadline can notice.
    """

    def __init__(self, upstream_port: int):
        self._upstream_port = upstream_port
        self.partitioned = threading.Event()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self):
        try:
            while True:
                client, _ = self._listener.accept()
                if self.partitioned.is_set():
                    # New connections during the partition (liveness
                    # probes) connect but never hear back — exactly a
                    # SIGSTOP'd or blackholed peer.
                    continue
                upstream = socket.create_connection(
                    ("127.0.0.1", self._upstream_port)
                )
                for source, sink in ((client, upstream), (upstream, client)):
                    threading.Thread(
                        target=self._pump, args=(source, sink), daemon=True
                    ).start()
        except OSError:
            pass

    def _pump(self, source, sink):
        try:
            while True:
                chunk = source.recv(1 << 16)
                if not chunk:
                    break
                if self.partitioned.is_set():
                    continue  # swallow silently; never a FIN
                sink.sendall(chunk)
        except OSError:
            pass

    def close(self):
        self._listener.close()


class TestChaosPartition:
    def test_partitioned_replica_fails_over_bit_identically(self):
        graph = small_graph(47)
        reference = ConnectorService(graph)
        queries = random_query_batch(graph, random.Random(47), 25)
        upstream = ShardHostServer(ConnectorService(graph)).start()
        proxy = _PartitionProxy(upstream.port)
        service = None
        try:
            service = make_sharded(
                graph,
                shards=[f"127.0.0.1:{proxy.port}", "local", "local"],
                replication=2,
                liveness_deadline=1.0,
                probe_timeout=0.5,
            )

            def partition():
                time.sleep(0.05)
                proxy.partitioned.set()

            threading.Thread(target=partition, daemon=True).start()
            results = service.solve_many(queries)
            for query, result in zip(queries, results):
                assert_connector_identical(result, reference.solve(query))
            stats = service.stats()
            assert stats.shards_failed >= 1
        finally:
            if service is not None:
                service.close()
            proxy.close()
            upstream.close()
        assert_no_orphan_processes()


# ----------------------------------------------------------------------
# Heartbeats and suspects
# ----------------------------------------------------------------------
class TestHeartbeats:
    def test_idle_heartbeat_marks_a_dead_daemon_suspect(self):
        service = ConnectorService(small_graph())
        server = ShardHostServer(service).start()
        transport = RemoteShardTransport(
            0, "127.0.0.1", server.port,
            digest=service.index_digest(),
            heartbeat_interval=0.05,
            probe_timeout=0.5,
        )
        try:
            assert not transport.is_suspect()
            server.close()  # the daemon's listener is gone
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not transport.is_suspect():
                time.sleep(0.02)
            assert transport.is_suspect()
        finally:
            transport.stop()
            server.close()

    def test_router_confirms_suspects_before_scatter(self):
        # A worker that died *between* batches is flagged (pipe suspicion
        # is process death) and taken out at the next batch boundary —
        # no in-flight sweeps ever touch it.
        graph = small_graph(53)
        reference = ConnectorService(graph)
        queries = random_query_batch(graph, random.Random(53), 10)
        with make_sharded(graph, n_shards=3, replication=2) as service:
            victim = service._shards[2]
            victim.process.terminate()
            victim.process.join(5.0)
            assert victim.is_suspect()
            results = service.solve_many(queries)
            for query, result in zip(queries, results):
                assert_connector_identical(result, reference.solve(query))
            assert service._failovers == 0  # caught before dispatch
        assert_no_orphan_processes()

    def test_probe_answers_do_not_kill_a_live_replica(self):
        service = ConnectorService(small_graph())
        with ShardHostServer(service) as server:
            transport = RemoteShardTransport(
                0, "127.0.0.1", server.port, digest=service.index_digest()
            )
            try:
                assert transport.probe(2.0)
            finally:
                transport.stop()


# ----------------------------------------------------------------------
# Rolling replace / resize
# ----------------------------------------------------------------------
class TestRollingReplace:
    def test_replace_shard_swaps_one_slot_in_place(self):
        graph = small_graph(59)
        reference = ConnectorService(graph)
        queries = random_query_batch(graph, random.Random(59), 8)
        with make_sharded(graph, n_shards=3, replication=2) as service:
            service.solve_many(queries)
            ring_before = service._ring
            keeper = service._shards[1]
            old_pid = service._shards[0].process.pid
            service.replace_shard(0, "local")
            assert service._ring is ring_before  # placement untouched
            assert service._shards[1] is keeper  # other slots untouched
            assert service._shards[0].process.pid != old_pid
            results = service.solve_many(queries)
            for query, result in zip(queries, results):
                assert_connector_identical(result, reference.solve(query))
        assert_no_orphan_processes()

    def test_replace_shard_rejects_unknown_slots(self):
        with make_sharded(small_graph(), n_shards=2) as service:
            with pytest.raises(ValueError, match="no shard slot 7"):
                service.replace_shard(7, "local")

    def test_failed_replacement_leaves_the_old_shard_serving(self):
        probe = socket.create_server(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        graph = small_graph(61)
        with make_sharded(graph, n_shards=2) as service:
            survivor = service._shards[0]
            with pytest.raises(ShardConnectError):
                service.replace_shard(0, f"127.0.0.1:{dead_port}")
            assert service._shards[0] is survivor
            assert service.solve(sorted(graph.nodes())[:2]) is not None
        assert_no_orphan_processes()

    def test_rolling_resize_diffs_against_current_specs(self):
        graph = small_graph(67)
        service_b = ConnectorService(graph)
        with ShardHostServer(service_b) as server:
            with make_sharded(graph, n_shards=3) as service:
                keeper_one = service._shards[1]
                keeper_two = service._shards[2]
                ring_before = service._ring
                service.resize(
                    [f"127.0.0.1:{server.port}", "local", "local"]
                )
                assert service._ring is ring_before  # same slot count
                assert service._shards[1] is keeper_one
                assert service._shards[2] is keeper_two
                assert service.transports == ("socket", "pipe", "pipe")
                service.resize(["local", "local", "local"])
                assert service._shards[1] is keeper_one
        assert_no_orphan_processes()

    def test_resize_to_identical_specs_is_a_true_noop(self):
        with make_sharded(small_graph(), n_shards=2) as service:
            ring = service._ring
            transports = dict(service._shards)
            service.resize(["local", "local"])
            assert service._ring is ring
            assert dict(service._shards) == transports

    def test_replace_while_degraded_revives_the_slot(self):
        graph = small_graph(71)
        with make_sharded(
            graph,
            n_shards=3,
            replication=2,
            backoff=BackoffPolicy(base_delay=60.0, max_delay=60.0, jitter=0.0),
        ) as service:
            victim = service._shards[0]
            victim.process.terminate()
            victim.process.join(5.0)
            service.solve_many(random_query_batch(graph, random.Random(71), 6))
            assert 0 in service.dead_shards
            # The operator's fast path around the 60s backoff timer.
            service.replace_shard(0, "local")
            assert service.dead_shards == ()
            assert service.stats().dead_shards == ()
        assert_no_orphan_processes()


# ----------------------------------------------------------------------
# Degraded-mode surface
# ----------------------------------------------------------------------
class TestServiceHealth:
    def test_no_stats_is_healthy(self):
        assert service_health(None) == {"status": "ok", "degraded": False}

    def test_plain_service_stats_is_healthy(self):
        health = service_health(ConnectorService(small_graph()).stats())
        assert health["status"] == "ok"
        assert "replication" not in health

    def test_sharded_stats_surface_the_ring_picture(self):
        with make_sharded(small_graph(), n_shards=2, replication=2) as service:
            health = service_health(service.stats())
            assert health == {
                "status": "ok",
                "degraded": False,
                "replication": 2,
                "dead_shards": [],
                "failovers": 0,
                "reconnects": 0,
                "shards_failed": 0,
            }

    def test_dead_slot_reads_as_degraded(self):
        graph = small_graph(73)
        with make_sharded(
            graph,
            n_shards=2,
            replication=2,
            backoff=BackoffPolicy(base_delay=60.0, max_delay=60.0, jitter=0.0),
        ) as service:
            service._shards[1].process.terminate()
            service._shards[1].process.join(5.0)
            service.solve(sorted(graph.nodes())[:2])
            health = service_health(service.stats())
            assert health["status"] == "degraded"
            assert health["degraded"] is True
            assert health["dead_shards"] == [1]
            assert health["shards_failed"] == 1


# ----------------------------------------------------------------------
# Bounded teardown against a hung daemon (the SIGSTOP regression)
# ----------------------------------------------------------------------
class TestStopTimeouts:
    def test_stop_and_shutdown_are_bounded_against_a_hung_daemon(self):
        process, port = spawn_shard_host("email")
        try:
            from repro.datasets import load_dataset

            digest = ConnectorService(load_dataset("email")).index_digest()
            transport = RemoteShardTransport(
                0, "127.0.0.1", port, digest=digest
            )
            os.kill(process.pid, signal.SIGSTOP)

            started = time.monotonic()
            transport.stop()
            assert time.monotonic() - started < 8.0

            started = time.monotonic()
            assert shutdown_shard_host("127.0.0.1", port, timeout=1.0) is False
            assert time.monotonic() - started < 5.0

            started = time.monotonic()
            with pytest.raises(ShardConnectError):
                ping_shard_host("127.0.0.1", port, timeout=1.0)
            assert time.monotonic() - started < 5.0
        finally:
            try:
                os.kill(process.pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            process.kill()
            process.communicate()
