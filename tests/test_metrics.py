"""Tests for graph summary metrics (Table-1 columns)."""

import pytest

from helpers import random_connected_graph, to_networkx
from repro.graphs.graph import Graph
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.metrics import (
    average_clustering,
    average_degree,
    degree_histogram,
    density,
    effective_diameter,
    local_clustering,
    summarize,
)


class TestDensity:
    def test_complete_graph(self):
        assert density(complete_graph(6)) == 1.0

    def test_path(self):
        assert density(path_graph(4)) == pytest.approx(3 / 6)

    def test_tiny(self):
        assert density(Graph()) == 0.0
        assert density(Graph(nodes=[1])) == 0.0


class TestAverageDegree:
    def test_cycle(self):
        from repro.graphs.generators import cycle_graph

        assert average_degree(cycle_graph(7)) == 2.0

    def test_empty(self):
        assert average_degree(Graph()) == 0.0


class TestClustering:
    def test_triangle(self, triangle):
        assert local_clustering(triangle, 0) == 1.0
        assert average_clustering(triangle) == 1.0

    def test_star_no_triangles(self, star):
        assert average_clustering(star) == 0.0

    def test_degree_below_two(self, path5):
        assert local_clustering(path5, 0) == 0.0

    def test_matches_networkx(self):
        import networkx as nx

        g = random_connected_graph(40, 0.15, 64)
        ours = average_clustering(g)
        theirs = nx.average_clustering(to_networkx(g))
        assert ours == pytest.approx(theirs)

    def test_sampled_close(self):
        g = random_connected_graph(150, 0.06, 65)
        import random

        full = average_clustering(g)
        sampled = average_clustering(g, sample_size=80, rng=random.Random(0))
        assert sampled == pytest.approx(full, abs=0.1)


class TestEffectiveDiameter:
    def test_complete_graph_is_one(self):
        assert effective_diameter(complete_graph(10)) == pytest.approx(1.0, abs=0.2)

    def test_path_below_true_diameter(self):
        ed = effective_diameter(path_graph(30))
        assert 15 < ed < 29

    def test_tiny(self):
        assert effective_diameter(Graph(nodes=[1])) == 0.0


class TestDegreeHistogram:
    def test_star(self, star):
        assert degree_histogram(star) == {5: 1, 1: 5}


class TestSummarize:
    def test_summary_fields(self, two_triangles_bridge):
        summary = summarize(two_triangles_bridge, name="bridge")
        assert summary.name == "bridge"
        assert summary.num_nodes == 6
        assert summary.num_edges == 7
        assert 0 < summary.density < 1
        assert summary.average_degree == pytest.approx(14 / 6)
        assert "bridge" in summary.formatted()
