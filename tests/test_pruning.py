"""Certified λ×root sweep pruning: bit-identity, bounds, counters, rebuilds.

The contract under test (see :mod:`repro.core.pruning`): pruning only
ever skips ``(root, λ)`` pairs whose *provable* score lower bound exceeds
the running incumbent, so a pruned sweep returns the same winning
``(nodes, root, λ, key)`` as the unpruned sweep — across backends, shard
counts, warm/cold caches, and mutation epochs.  The ``candidates`` trace
may legitimately differ (pruned roots never materialize candidate sets),
so the pruned-vs-unpruned comparisons here pin the winner, while the
all-defaults comparisons across serving paths use the full
:func:`helpers.assert_connector_identical` contract.
"""

import random

import pytest

from helpers import (
    assert_connector_identical,
    assert_no_orphan_processes,
    random_connected_graph,
    random_query_batch,
)
from repro.core.options import SolveOptions
from repro.core.pruning import (
    candidate_bound,
    exact_score_floor,
    pairwise_gap_sum,
    proxy_score_floor,
    root_bound,
)
from repro.core.service import ConnectorService, _lambda_grid, _root_list
from repro.core.sharded import ShardedConnectorService
from repro.core.versioned import GraphDelta
from repro.graphs.csr import HAS_NUMPY
from test_versioned import delta_for

BACKENDS = ["dict"] + (["csr"] if HAS_NUMPY else [])


def _winner(result):
    """The certified-identical part of a solve: winner, not the trace."""
    return (
        result.nodes,
        result.metadata["root"],
        result.metadata["lambda"],
    )


# ----------------------------------------------------------------------
# The tentpole contract: pruned == unpruned, bit for bit
# ----------------------------------------------------------------------
class TestPrunedUnprunedIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("selection", ["a", "wiener", "auto", "sampled"])
    @pytest.mark.parametrize("seed", [3, 17, 64])
    def test_same_winner_across_selections(self, backend, selection, seed):
        rng = random.Random(seed)
        g = random_connected_graph(55, 0.08, seed)
        queries = random_query_batch(g, rng, 10, lo=2, hi=6)
        # A small exact_threshold exercises the auto/sampled regime split
        # on candidates this size instead of routing everything to exact.
        base = SolveOptions(
            backend=backend, selection=selection, exact_threshold=8
        )
        pruned = ConnectorService(g, base)
        unpruned = ConnectorService(g, base.replace(prune=False))
        for query in queries:
            assert _winner(pruned.solve(query)) == _winner(unpruned.solve(query))
        stats = pruned.stats()
        assert stats.pairs_pruned + stats.pairs_scored > 0
        assert unpruned.stats().pairs_pruned == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_winner_with_extended_roots(self, backend, seed=29):
        """Non-default roots (beyond Lemma 5's query set) widen the sweep
        — exactly where root-level pruning fires hardest and where the
        any-scoring-root requirement of the proxy bound is exercised."""
        rng = random.Random(seed)
        g = random_connected_graph(60, 0.07, seed)
        nodes = sorted(g.nodes())
        for _ in range(8):
            query = rng.sample(nodes, rng.randint(2, 4))
            roots = tuple(
                dict.fromkeys(query + rng.sample(nodes, 6))
            )
            for selection in ("a", "auto"):
                opts = SolveOptions(
                    backend=backend, roots=roots, selection=selection,
                    exact_threshold=8,
                )
                pruned = ConnectorService(g, opts)
                unpruned = ConnectorService(g, opts.replace(prune=False))
                assert _winner(pruned.solve(query)) == _winner(
                    unpruned.solve(query)
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_and_cold_prune_identically(self, backend):
        """Counters and answers are a pure function of (graph, query,
        options): re-solving on a warm service adds result-cache hits,
        never different pruning decisions."""
        g = random_connected_graph(40, 0.1, 71)
        rng = random.Random(71)
        queries = random_query_batch(g, rng, 6)
        warm = ConnectorService(g, SolveOptions(backend=backend))
        for query in queries:
            warm.solve(query)
        after_cold = warm.stats()
        for query in queries:
            warm.solve(query)  # result-cache hits: no new sweeps
        after_warm = warm.stats()
        assert after_warm.pairs_pruned == after_cold.pairs_pruned
        assert after_warm.pairs_scored == after_cold.pairs_scored

        fresh = ConnectorService(g, SolveOptions(backend=backend))
        for query in queries:
            assert_connector_identical(fresh.solve(query), warm.solve(query))
        assert fresh.stats().pairs_pruned == after_cold.pairs_pruned
        assert fresh.stats().pairs_scored == after_cold.pairs_scored


class TestIdentityAcrossServingPaths:
    """Default options (pruning on) through every serving path: the
    existing cross-path bit-identity contract must survive pruning."""

    @pytest.mark.skipif(not HAS_NUMPY, reason="cross-backend needs numpy")
    def test_backends_agree_under_default_pruning(self):
        g = random_connected_graph(50, 0.09, 83)
        rng = random.Random(83)
        dict_service = ConnectorService(g, SolveOptions(backend="dict"))
        csr_service = ConnectorService(g, SolveOptions(backend="csr"))
        for query in random_query_batch(g, rng, 8):
            assert_connector_identical(
                dict_service.solve(query), csr_service.solve(query)
            )
        # ...and both backends made the *same* pruning decisions.
        assert (
            dict_service.stats().pairs_pruned
            == csr_service.stats().pairs_pruned
        )

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_sharded_matches_local_across_epochs(self, n_shards):
        rng = random.Random(97)
        graph = random_connected_graph(40, 0.12, 97)
        reference = graph.copy()
        local = ConnectorService(graph.copy())
        queries = random_query_batch(graph, rng, 5)
        with ShardedConnectorService(graph, n_shards=n_shards) as ring:
            for _ in range(2):  # epoch 0, then a mutated epoch
                for query in queries:
                    assert_connector_identical(
                        ring.solve(query), local.solve(query)
                    )
                stats = ring.stats()
                assert stats.pairs_pruned + stats.pairs_scored > 0
                delta = delta_for(reference, rng)
                delta.apply_to_graph(reference)
                ring.apply_delta(delta)
                local.apply_delta(delta)
        assert_no_orphan_processes()


# ----------------------------------------------------------------------
# Counters partition the sweep
# ----------------------------------------------------------------------
class TestCounters:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pruned_plus_scored_covers_every_pair(self, backend):
        g = random_connected_graph(45, 0.1, 13)
        rng = random.Random(13)
        service = ConnectorService(g, SolveOptions(backend=backend))
        expected = 0
        for query in random_query_batch(g, rng, 7, lo=2, hi=5):
            query_set = frozenset(query)
            service.solve(query)
            grid = _lambda_grid(g.num_nodes, service.options.beta)
            roots = _root_list(service.options, query_set)
            expected += len(grid) * len(roots)
        stats = service.stats()
        assert stats.pairs_pruned + stats.pairs_scored == expected
        assert 0.0 <= stats.prune_rate <= 1.0

    def test_prune_rate_zero_before_any_sweep(self):
        service = ConnectorService(random_connected_graph(10, 0.3, 1))
        assert service.stats().prune_rate == 0.0


# ----------------------------------------------------------------------
# The bounds really are lower bounds
# ----------------------------------------------------------------------
class TestBoundValidity:
    def test_pairwise_gap_sum_matches_brute_force(self):
        rng = random.Random(5)
        for _ in range(50):
            values = [rng.randrange(0, 12) for _ in range(rng.randint(2, 9))]
            brute = sum(
                abs(a - b)
                for i, a in enumerate(values)
                for b in values[i + 1:]
            )
            assert pairwise_gap_sum(values) == brute

    @pytest.mark.parametrize("selection", ["a", "wiener", "auto", "sampled"])
    @pytest.mark.parametrize("seed", [7, 21])
    def test_bounds_never_exceed_true_keys(self, selection, seed):
        """Property sweep: every key the *unpruned* sweep records for a
        root's candidates is >= that root's certified bound, and every
        individual candidate key is >= its candidate bound."""
        from repro.core.service import _sweep_root_bounds

        g = random_connected_graph(40, 0.1, seed)
        rng = random.Random(seed)
        opts = SolveOptions(selection=selection, exact_threshold=8, prune=False)
        service = ConnectorService(g, opts)
        engine = service._engine(service._backend_name(opts))
        for query in random_query_batch(g, rng, 5, lo=2, hi=5):
            query_set = frozenset(query)
            roots = _root_list(opts, query_set)
            grid = _lambda_grid(g.num_nodes, opts.beta)
            bounds = _sweep_root_bounds(engine, roots, query_set, opts)
            for root in roots:
                per_lam = service._candidates_for_root(
                    engine, service._backend_name(opts), root, grid,
                    query_set, opts.adjust,
                )
                for candidate in per_lam:
                    key = service._score_candidate(
                        engine, candidate, root, opts
                    )
                    cand_floor = service._score_bound(
                        engine, candidate, root, opts
                    )
                    assert bounds[root] <= key + 1e-9
                    assert cand_floor <= key + 1e-9

    def test_primitive_floors_are_sane(self):
        # A path of length D contributes C(D+1, 3) beyond the all-pairs-1
        # base; a 1-gap regime degenerates to the base.
        assert exact_score_floor(4, 3, 0, 2) == 6 + 4  # C(4,2) + C(4,3)
        assert exact_score_floor(3, 1, 1, 2) == 3
        # The proxy floor takes the weakest scorer.
        assert proxy_score_floor(5, [(10, 3), (4, 2)]) == 5 * (4 + 3)
        # Dispatch: "wiener" ignores scorers, "a" ignores the exact floor.
        assert root_bound("wiener", 8, 4, 3, 0, 2, [(1, 2)]) == 10
        assert root_bound("a", 8, 4, 3, 0, 2, [(1, 2)]) == 4 * (1 + 2)
        # "sampled" above the threshold floors at C(s, 2).
        assert root_bound("sampled", 3, 10, 1, 0, 2, [(0, 2)]) == 45
        # candidate_bound, exact regime: gap sum vs edge deficit.
        assert candidate_bound("wiener", 8, 3, [0, 1, 2], 2) == max(4, 2 * 3 - 2)


# ----------------------------------------------------------------------
# Satellite: eager landmark rebuild at delta-apply time
# ----------------------------------------------------------------------
class TestEagerLandmarkRebuild:
    def test_apply_delta_rebuilds_eagerly(self):
        g = random_connected_graph(30, 0.15, 31)
        rng = random.Random(31)
        service = ConnectorService(g, landmarks=4)
        assert service.stats().landmark_rebuilds == 0  # lazy until first use
        assert service.landmark_index is not None
        assert service.stats().landmark_rebuilds == 1
        delta = delta_for(g, rng)
        service.apply_delta(delta)
        # Rebuilt *inside* apply_delta — not deferred to the next access.
        assert service.stats().landmark_rebuilds == 2
        assert service._landmark_index is not None
        before = service.stats().landmark_rebuilds
        service.solve(sorted(g.nodes())[:3])
        service.estimate_distance(*sorted(g.nodes())[:2])
        assert service.stats().landmark_rebuilds == before

    def test_no_landmarks_means_no_rebuilds(self):
        g = random_connected_graph(20, 0.2, 37)
        service = ConnectorService(g)
        service.apply_delta(delta_for(g, random.Random(37)))
        assert service.stats().landmark_rebuilds == 0
        assert service.landmark_index is None

    def test_warm_ring_replicas_rebuild_at_mutate_time(self):
        """The regression the satellite pins: shard replicas built with
        ``landmarks=k`` pay their landmark rebuild inside the mutate RPC,
        so the first post-mutate sweep is not the one paying k BFS passes.
        Asserted via the cross-process rebuild counter, not timing."""
        graph = random_connected_graph(30, 0.15, 41)
        rng = random.Random(41)
        queries = random_query_batch(graph, rng, 3)
        with ShardedConnectorService(graph, n_shards=2, landmarks=3) as ring:
            for query in queries:  # warm the ring
                ring.solve(query)
            assert ring.stats().landmark_rebuilds == 0  # nothing asked yet
            delta = delta_for(graph, rng)
            ring.apply_delta(delta)
            # Every replica (2 shards + the router-local fallback) rebuilt
            # eagerly during the epoch flip.
            assert ring.stats().landmark_rebuilds == 3
            before = ring.stats().landmark_rebuilds
            for query in queries:
                ring.solve(query)  # post-mutate sweeps pay no rebuild
            assert ring.stats().landmark_rebuilds == before
        assert_no_orphan_processes()
