"""Tests for the JSONL trace schema, the synthesizers, and the CLI verbs."""

import json
import random

import pytest

from repro.cli import main
from repro.errors import TraceError
from repro.loadgen.trace import TRACE_VERSION, Trace, TraceRecord, synthesize


def toy_pool():
    return [(0, 1, 2), (1, 2, 3), (4, 5, 6), (7, 8, 9)]


class TestSchema:
    def test_round_trip_in_memory(self):
        trace = synthesize(toy_pool(), 25, seed=1)
        loaded = Trace.loads(trace.dumps())
        assert loaded.records == trace.records
        assert loaded.meta == trace.meta

    def test_round_trip_on_disk(self, tmp_path):
        trace = synthesize(toy_pool(), 10, seed=2)
        path = tmp_path / "t.jsonl"
        trace.save(path)
        assert Trace.load(path).records == trace.records

    def test_header_first_line(self):
        lines = synthesize(toy_pool(), 3, seed=0).dumps().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["version"] == TRACE_VERSION
        assert len(lines) == 4  # header + 3 request records

    def test_options_survive(self):
        trace = Trace(
            (TraceRecord(0.0, (1, 2), {"method": "ws-q", "beta": 2.0}),)
        )
        loaded = Trace.loads(trace.dumps())
        assert loaded.records[0].options == {"method": "ws-q", "beta": 2.0}

    def test_duration_and_len(self):
        trace = Trace(
            (TraceRecord(0.0, (1,)), TraceRecord(2.5, (2,)))
        )
        assert len(trace) == 2
        assert trace.duration == 2.5
        assert Trace(()).duration == 0.0

    def test_scaled(self):
        trace = Trace((TraceRecord(4.0, (1,)),))
        assert trace.scaled(2.0).records[0].offset == 2.0
        with pytest.raises(ValueError):
            trace.scaled(0.0)


class TestValidation:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            '{"not": "a header"}\n',
            '{"kind": "header", "version": 99}\n',
            '{"kind": "header", "version": 1, "meta": 5}\n',
            '{"kind": "header", "version": 1}\nnot json\n',
            '{"kind": "header", "version": 1}\n{"kind": "bogus"}\n',
            '{"kind": "header", "version": 1}\n'
            '{"kind": "request", "offset": -1, "query": [1]}\n',
            '{"kind": "header", "version": 1}\n'
            '{"kind": "request", "offset": "soon", "query": [1]}\n',
            '{"kind": "header", "version": 1}\n'
            '{"kind": "request", "offset": 0, "query": []}\n',
            '{"kind": "header", "version": 1}\n'
            '{"kind": "request", "offset": 0, "query": [1], "options": 7}\n',
        ],
    )
    def test_malformed_traces_raise(self, text):
        with pytest.raises(TraceError):
            Trace.loads(text)


class TestSynthesize:
    def test_deterministic(self):
        a = synthesize(toy_pool(), 50, zipf=1.3, burst_amplitude=0.4,
                       burst_period_s=2.0, seed=9)
        b = synthesize(toy_pool(), 50, zipf=1.3, burst_amplitude=0.4,
                       burst_period_s=2.0, seed=9)
        assert a.dumps() == b.dumps()

    def test_seed_matters(self):
        a = synthesize(toy_pool(), 50, seed=1)
        b = synthesize(toy_pool(), 50, seed=2)
        assert a.records != b.records

    def test_offsets_start_at_zero_and_increase(self):
        trace = synthesize(toy_pool(), 40, seed=3)
        offsets = [record.offset for record in trace.records]
        assert offsets[0] == 0.0
        assert offsets == sorted(offsets)

    def test_zipf_skews_toward_head(self):
        trace = synthesize(toy_pool(), 400, zipf=2.0, seed=4)
        counts = {}
        for record in trace.records:
            counts[record.query] = counts.get(record.query, 0) + 1
        hottest = toy_pool()[0]
        assert counts[hottest] == max(counts.values())
        assert counts[hottest] > 400 // len(toy_pool())

    def test_mean_gap_controls_duration(self):
        fast = synthesize(toy_pool(), 200, mean_gap_ms=1.0, seed=5)
        slow = synthesize(toy_pool(), 200, mean_gap_ms=20.0, seed=5)
        assert slow.duration > 5 * fast.duration

    def test_options_attached_to_every_record(self):
        trace = synthesize(toy_pool(), 5, options={"beta": 2.0}, seed=6)
        assert all(r.options == {"beta": 2.0} for r in trace.records)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            synthesize([], 5)
        with pytest.raises(ValueError):
            synthesize(toy_pool(), -1)
        with pytest.raises(ValueError):
            synthesize(toy_pool(), 5, mean_gap_ms=0)
        with pytest.raises(ValueError):
            synthesize(toy_pool(), 5, zipf=-1)
        with pytest.raises(ValueError):
            synthesize(toy_pool(), 5, burst_amplitude=1.0)
        with pytest.raises(ValueError):
            synthesize(toy_pool(), 5, burst_period_s=0)

    def test_empty_pool_ok_for_zero_requests(self):
        assert len(synthesize([], 0)) == 0


class TestTraceCli:
    def test_synth_writes_deterministic_trace(self, tmp_path, capsys):
        out_a = tmp_path / "a.jsonl"
        out_b = tmp_path / "b.jsonl"
        argv = ["trace", "synth", None, "email", "--requests", "20",
                "--pool-size", "4", "--seed", "5"]
        for out in (out_a, out_b):
            argv[2] = str(out)
            assert main(list(argv)) == 0
        assert out_a.read_text() == out_b.read_text()
        trace = Trace.load(out_a)
        assert len(trace) == 20
        assert trace.meta["dataset"] == "email"

    def test_synth_rejects_bad_knobs(self, tmp_path, capsys):
        out = str(tmp_path / "t.jsonl")
        assert main(["trace", "synth", out, "email",
                     "--burst-amplitude", "1.5"]) == 2
        assert main(["trace", "synth", out, "email",
                     "--pool-size", "0"]) == 2

    def test_trace_without_subcommand_is_usage(self, capsys):
        assert main(["trace"]) == 2

    def test_query_batch_accepts_trace_file(self, tmp_path, capsys):
        """Satellite: `repro query --batch` takes a JSONL trace directly."""
        trace_path = tmp_path / "t.jsonl"
        assert main(["trace", "synth", str(trace_path), "email",
                     "--requests", "6", "--pool-size", "2",
                     "--query-size", "3", "--seed", "1"]) == 0
        capsys.readouterr()
        assert main(["query", "email", "--batch", str(trace_path),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["results"]) == 6
        trace = Trace.load(trace_path)
        for record, payload in zip(trace.records, document["results"]):
            assert set(record.query) <= set(payload["nodes"])

    def test_query_batch_still_reads_plain_formats(self, tmp_path, capsys):
        from repro.cli import _read_batch

        plain = tmp_path / "plain.txt"
        plain.write_text("# comment\n0 1 2\n3 4\n")
        assert _read_batch(str(plain)) == [[0, 1, 2], [3, 4]]
        as_json = tmp_path / "batch.json"
        as_json.write_text('{"queries": [[0, 1], [2, 3]]}')
        assert _read_batch(str(as_json)) == [[0, 1], [2, 3]]

    def test_replay_usage_errors(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        synthesize(toy_pool(), 2, seed=0).save(trace_path)
        assert main(["replay", str(trace_path), "--target", "nope"]) == 2
        assert main(["replay", str(tmp_path / "missing.jsonl"),
                     "--target", "127.0.0.1:9"]) == 2
        assert main(["replay", str(trace_path), "--target", "127.0.0.1:9",
                     "--speed", "0"]) == 2
        bad_slo = tmp_path / "slo.json"
        bad_slo.write_text('{"max_p9_ms": 1}')
        assert main(["replay", str(trace_path), "--target", "127.0.0.1:9",
                     "--slo", str(bad_slo)]) == 2

    def test_replay_unreachable_server_exits_1(self, tmp_path, capsys):
        import socket

        trace_path = tmp_path / "t.jsonl"
        synthesize(toy_pool(), 2, seed=0).save(trace_path)
        # An unbound port: grab one, close it, replay against it.
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        assert main(["replay", str(trace_path),
                     "--target", f"127.0.0.1:{port}"]) == 1
