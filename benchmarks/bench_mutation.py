"""Mutation benchmark: scoped invalidation vs rebuild-from-scratch.

Measures what PR 7's versioned-graph subsystem is *for*: applying a
small :class:`~repro.core.versioned.GraphDelta` to a warm
:class:`~repro.core.service.ConnectorService` and continuing to serve,
against the only alternative the tower had before — tearing the service
down and rebuilding it cold on the mutated graph.  One instance (the
10k-node / 50k-edge reference), one Zipf workload, one delta touching
well under 1% of the edges, two ways forward:

* **scoped** — ``apply_delta`` on the warm service: the delta-scoped
  invalidation pass evicts the version-bound layers (candidates and
  results are functions of the whole reweighted graph, so every delta
  clears them) and keeps what is provably still valid — score entries
  (pure functions of the induced subgraph ``G[S]``, untouched unless the
  delta lands inside ``S``) and the root-BFS trees the delta's edges
  cannot reach.  The next window is served warm at the new epoch.
* **rebuild** — a fresh service over the mutated graph serving the same
  window cold: what "just restart it" costs.

Both paths must return **bit-identical** connectors (and spot-checks
against one-shot ``wiener_steiner`` on the mutated graph pin them to the
ground truth).  The retention numbers are reported per layer, honestly:
candidates and results are always version-bound, so the headline
retention metric is over the *warm* layers — the score and root-BFS
entries that make a warm service fast — of which a small delta must
retain a majority.

The gate (``--smoke`` in CI) checks behavior, not speed: epoch advanced,
both paths bit-identical, a majority of the warm-layer entries retained,
and retained score entries actually re-hit after the delta.  The full
run additionally requires the scoped path to beat the rebuild on
ms/query and writes ``BENCH_mutation.json``.

Usage::

    python benchmarks/bench_mutation.py           # reference instance, writes BENCH_mutation.json
    python benchmarks/bench_mutation.py --smoke   # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys
import time

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from bench_backend import build_instance
from bench_serving import make_workload
from bench_sharded import identical

from repro.core.service import ConnectorService
from repro.core.versioned import GraphDelta
from repro.core.wiener_steiner import wiener_steiner


def connected_after_removal(graph, u, v) -> bool:
    """Whether dropping the edge ``{u, v}`` keeps the graph connected."""
    seen = {u}
    stack = [u]
    while stack:
        x = stack.pop()
        for y in graph.neighbors(x):
            if (x == u and y == v) or (x == v and y == u):
                continue
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return v in seen


def make_delta(graph, rng: random.Random, ops: int) -> GraphDelta:
    """A random applicable delta of ``ops`` edges, connectivity-preserving.

    Half deletes (bridgeless existing edges only, so every query stays
    solvable), half triadic-closure inserts (an absent edge between two
    neighbors of a shared node) — the edge-stream traffic the motivating
    social/PPI workloads actually see: new links overwhelmingly close
    triangles rather than joining random distant pairs.
    """
    nodes = sorted(graph.nodes())
    edges = sorted(graph.edges(), key=repr)
    inserts: list[tuple] = []
    deletes: list[tuple] = []
    taken: set[frozenset] = set()
    scratch = graph.copy()
    attempts = 0
    while len(inserts) + len(deletes) < ops and attempts < 200 * ops:
        attempts += 1
        if rng.random() < 0.5:
            u, v = edges[rng.randrange(len(edges))]
            if frozenset((u, v)) in taken:
                continue
            if not connected_after_removal(scratch, u, v):
                continue
            deletes.append((u, v))
            scratch.remove_edge(u, v)
        else:
            pivot = nodes[rng.randrange(len(nodes))]
            wings = sorted(scratch.neighbors(pivot))
            if len(wings) < 2:
                continue
            u, v = rng.sample(wings, 2)
            if scratch.has_edge(u, v) or frozenset((u, v)) in taken:
                continue
            inserts.append((u, v))
            scratch.add_edge(u, v)
        taken.add(frozenset((u, v)))
    return GraphDelta(inserts=tuple(inserts), deletes=tuple(deletes))


def serve_stream(service, requests):
    """Serve every request; returns (results, seconds)."""
    results = []
    started = time.perf_counter()
    for request in requests:
        results.append(service.solve(request))
    return results, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--edges", type=int, default=50_000)
    parser.add_argument("--query-size", type=int, default=4)
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--unique", type=int, default=16,
                        help="distinct query sets in the request pool")
    parser.add_argument("--delta-ops", type=int, default=8,
                        help="edge mutations in the applied delta (one "
                             "incremental update batch)")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless both paths are bit-identical, "
        "the epoch advances, and a majority of the warm-layer entries "
        "survive the delta (CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_mutation.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 1_500
        if args.edges == parser.get_default("edges"):
            args.edges = 6_000
        if args.requests == parser.get_default("requests"):
            args.requests = 16
        if args.unique == parser.get_default("unique"):
            args.unique = 8
        if args.delta_ops == parser.get_default("delta_ops"):
            args.delta_ops = 5

    rng = random.Random(args.seed)
    graph, _ = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    requests = make_workload(
        graph, args.requests, args.unique, args.query_size, args.seed
    )
    delta = make_delta(graph, rng, args.delta_ops)
    delta_fraction = delta.num_ops / graph.num_edges
    mutated = graph.copy()
    delta.apply_to_graph(mutated)
    print(
        f"instance: {graph}, {len(requests)} requests "
        f"({args.unique} distinct), delta {delta!r} "
        f"({delta_fraction:.2%} of edges), seed={args.seed}",
        flush=True,
    )

    # --- scoped path: warm up, mutate in place, keep serving ----------
    # Both paths are timed from the mutation event to the next window
    # fully served: apply_delta (validation, incremental CSR refresh,
    # invalidation scan) counts against scoped exactly as construction
    # counts against the rebuild.
    scoped = ConnectorService(graph)
    warm_results, warm_seconds = serve_stream(scoped, requests)
    before = scoped.stats()
    mutate_started = time.perf_counter()
    epoch = scoped.apply_delta(delta)
    apply_seconds = time.perf_counter() - mutate_started
    after_delta = scoped.stats()
    scoped_results, scoped_window_seconds = serve_stream(scoped, requests)
    scoped_seconds = apply_seconds + scoped_window_seconds
    after_window = scoped.stats()

    # --- rebuild path: fresh service over the mutated graph, cold -----
    rebuild_started = time.perf_counter()
    rebuild = ConnectorService(mutated)
    construct_seconds = time.perf_counter() - rebuild_started
    rebuild_results, rebuild_window_seconds = serve_stream(rebuild, requests)
    rebuild_seconds = construct_seconds + rebuild_window_seconds

    # --- retention accounting (per layer, no silent aggregation) ------
    warm_before = before.score_cache_size + before.cached_roots
    warm_after = after_delta.score_cache_size + after_delta.cached_roots
    warm_retained = warm_after / warm_before if warm_before else 0.0
    score_retained = (
        after_delta.score_cache_size / before.score_cache_size
        if before.score_cache_size else 0.0
    )
    root_retained = (
        after_delta.cached_roots / before.cached_roots
        if before.cached_roots else 0.0
    )
    rehit_scores = after_window.score_hits - after_delta.score_hits

    both_identical = all(
        identical(a, b) for a, b in zip(scoped_results, rebuild_results)
    )
    spot_queries = requests[:2]
    spot_identical = all(
        identical(scoped.solve(query), wiener_steiner(mutated, query))
        for query in spot_queries
    )

    warm_ms = warm_seconds / len(requests) * 1e3
    scoped_ms = scoped_seconds / len(requests) * 1e3
    rebuild_ms = rebuild_seconds / len(requests) * 1e3
    print(f"warm-up window : {warm_seconds:8.3f}s ({warm_ms:7.1f} ms/query)")
    print(f"scoped mutate  : {scoped_seconds:8.3f}s ({scoped_ms:7.1f} ms/query) "
          f"at epoch {epoch} (apply_delta {apply_seconds * 1e3:.1f} ms)")
    print(f"full rebuild   : {rebuild_seconds:8.3f}s ({rebuild_ms:7.1f} ms/query)")
    print(f"retention: warm layers {warm_retained:.0%} "
          f"(scores {score_retained:.0%}, roots {root_retained:.0%}); "
          f"evicted {after_delta.entries_invalidated} entries, "
          f"kept {after_delta.entries_retained}; "
          f"{rehit_scores} retained score entries re-hit", flush=True)
    print(f"identical: scoped-vs-rebuild={both_identical} "
          f"spot-vs-one-shot={spot_identical}")

    failures = []
    if epoch != 1 or after_delta.epoch != 1:
        failures.append(f"epoch did not advance to 1 (saw {after_delta.epoch})")
    if not both_identical:
        failures.append("scoped and rebuilt services disagree post-delta")
    if not spot_identical:
        failures.append("post-delta answers differ from one-shot wiener_steiner")
    if warm_retained <= 0.5:
        failures.append(
            f"scoped invalidation kept only {warm_retained:.0%} of the "
            "warm-layer entries (score + root-BFS); majority required"
        )
    if rehit_scores <= 0:
        failures.append("no retained score entry was re-hit after the delta")
    if after_delta.entries_invalidated <= 0:
        failures.append("delta evicted nothing: version-bound layers must clear")
    if not args.smoke and scoped_seconds >= rebuild_seconds:
        failures.append(
            f"scoped serving ({scoped_ms:.1f} ms/query) did not beat the "
            f"rebuild ({rebuild_ms:.1f} ms/query)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.smoke:
        print("smoke OK")
        return 0

    record = {
        "benchmark": "scoped cache invalidation vs service rebuild after a small delta",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": args.query_size,
            "seed": args.seed,
        },
        "workload": {
            "requests": len(requests),
            "distinct_queries": len({frozenset(q) for q in requests}),
            "distribution": "zipf(1.1) over the query pool, each distinct query at least once",
        },
        "delta": {
            "inserts": len(delta.inserts),
            "deletes": len(delta.deletes),
            "ops": delta.num_ops,
            "fraction_of_edges": round(delta_fraction, 5),
            "digest": delta.digest(),
        },
        "epoch_after": epoch,
        "identical_connectors": both_identical and spot_identical,
        "warm_ms_per_query": round(warm_ms, 2),
        "scoped_ms_per_query": round(scoped_ms, 2),
        "rebuild_ms_per_query": round(rebuild_ms, 2),
        "apply_delta_ms": round(apply_seconds * 1e3, 2),
        "rebuild_over_scoped": round(rebuild_seconds / scoped_seconds, 3),
        "timing_note": "both paths timed from the mutation event to the "
                       "next window fully served (apply_delta vs service "
                       "reconstruction included)",
        "retention": {
            "entries_retained": after_delta.entries_retained,
            "entries_invalidated": after_delta.entries_invalidated,
            "warm_layer_retained_fraction": round(warm_retained, 4),
            "score_entries_before": before.score_cache_size,
            "score_entries_after": after_delta.score_cache_size,
            "score_retained_fraction": round(score_retained, 4),
            "root_entries_before": before.cached_roots,
            "root_entries_after": after_delta.cached_roots,
            "root_retained_fraction": round(root_retained, 4),
            "retained_score_entries_rehit": rehit_scores,
            "note": "candidate and result entries are version-bound by "
                    "design (every edge participates in the Lemma-4 "
                    "reweighted instance) and are always evicted",
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
