"""Ablation benchmarks for the design choices DESIGN.md calls out.

Four knobs of Algorithm 1, each measured for quality impact (Wiener index
of the solutions) and cost:

* root restriction — Lemma 5 restricts candidate roots to ``Q``; the
  ablation compares against trying every vertex as a root;
* λ grid resolution β — coarser grids are faster but may miss the right
  size/distance balance;
* AdjustDistances — the Lemma-2 rebalancing the worst-case guarantee needs;
* selection criterion — exact Wiener re-scoring (Remark 1) vs the A proxy.
"""

import random

import pytest

from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.generators import connectify, erdos_renyi
from repro.workloads.random_queries import random_query


def _instance(seed: int = 5, n: int = 300):
    rng = random.Random(seed)
    graph = connectify(erdos_renyi(n, 8.0 / n, rng=rng), rng=rng)
    query = random_query(graph, 6, rng)
    return graph, query


class TestRootRestriction:
    def test_roots_from_query(self, benchmark):
        graph, query = _instance()
        result = benchmark.pedantic(
            wiener_steiner, args=(graph, query), rounds=1, iterations=1
        )
        benchmark.extra_info["wiener"] = result.wiener_index

    def test_roots_all_vertices(self, benchmark):
        """Lemma 5 costs at most 3x in the objective; measure the trade."""
        graph, query = _instance(n=120)  # smaller: |V| roots is expensive
        result = benchmark.pedantic(
            wiener_steiner,
            args=(graph, query),
            kwargs={"roots": list(graph.nodes())},
            rounds=1,
            iterations=1,
        )
        restricted = wiener_steiner(graph, query)
        assert result.wiener_index <= restricted.wiener_index + 1e-9
        benchmark.extra_info["wiener"] = result.wiener_index


class TestLambdaGrid:
    @pytest.mark.parametrize("beta", [0.25, 0.5, 1.0, 2.0])
    def test_beta(self, benchmark, beta):
        graph, query = _instance()
        result = benchmark.pedantic(
            wiener_steiner,
            args=(graph, query),
            kwargs={"beta": beta},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["beta"] = beta
        benchmark.extra_info["wiener"] = result.wiener_index
        benchmark.extra_info["candidates"] = result.metadata["candidates"]


class TestAdjustDistances:
    @pytest.mark.parametrize("adjust", [True, False])
    def test_adjust(self, benchmark, adjust):
        graph, query = _instance()
        result = benchmark.pedantic(
            wiener_steiner,
            args=(graph, query),
            kwargs={"adjust": adjust},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["adjust"] = adjust
        benchmark.extra_info["wiener"] = result.wiener_index


class TestSelectionCriterion:
    @pytest.mark.parametrize("selection", ["a", "wiener"])
    def test_selection(self, benchmark, selection):
        graph, query = _instance()
        result = benchmark.pedantic(
            wiener_steiner,
            args=(graph, query),
            kwargs={"selection": selection},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["selection"] = selection
        benchmark.extra_info["wiener"] = result.wiener_index

    def test_exact_scoring_never_worse(self, benchmark):
        graph, query = _instance(seed=9)
        exact = benchmark.pedantic(
            wiener_steiner,
            args=(graph, query),
            kwargs={"selection": "wiener"},
            rounds=1,
            iterations=1,
        )
        proxy = wiener_steiner(graph, query, selection="a")
        assert exact.wiener_index <= proxy.wiener_index + 1e-9
