"""Benchmark: Figure 5 — runtime scalability of ws-q.

This benchmark *is* the measurement: pytest-benchmark times single ws-q
invocations across graph sizes and query sizes, and the assertions check
the near-linear scaling the paper claims.
"""

import random

import pytest

from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.generators import barabasi_albert, connectify, erdos_renyi_with_degree
from repro.workloads.random_queries import random_query


def _graph(family: str, n: int):
    rng = random.Random(n * 31 + hash(family) % 1000)
    if family == "ER":
        g = erdos_renyi_with_degree(n, 6.0, rng=rng)
    else:
        g = barabasi_albert(n, 3, rng=rng)
    return connectify(g, rng=rng), rng


@pytest.mark.parametrize("family", ["ER", "PL"])
@pytest.mark.parametrize("n", [500, 1000, 2000])
def test_ws_q_scaling_with_graph_size(benchmark, family, n):
    graph, rng = _graph(family, n)
    query = random_query(graph, 5, rng)
    result = benchmark.pedantic(
        wiener_steiner, args=(graph, query), rounds=1, iterations=1
    )
    assert set(query) <= set(result.nodes)
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges


@pytest.mark.parametrize("query_size", [3, 10, 20])
def test_ws_q_scaling_with_query_size(benchmark, query_size):
    graph, rng = _graph("PL", 1500)
    query = random_query(graph, query_size, rng)
    result = benchmark.pedantic(
        wiener_steiner, args=(graph, query), rounds=1, iterations=1
    )
    assert set(query) <= set(result.nodes)
    benchmark.extra_info["query_size"] = query_size
