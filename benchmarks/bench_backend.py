"""End-to-end backend benchmark: ``wiener_steiner`` CSR vs dict.

Measures the full Algorithm-1 sweep (λ grid × roots, Mehlhorn solves,
AdjustDistances, scoring) on a connected Erdős–Rényi graph with both
backends, verifies the connectors are identical, and records the result
in ``BENCH_backend.json`` so the performance trajectory has a baseline.

Usage::

    python benchmarks/bench_backend.py            # reference: 10k nodes / 50k edges, |Q|=10
    python benchmarks/bench_backend.py --smoke    # small CI gate: fails if CSR is slower

The reference configuration is the acceptance target of the CSR-backend
PR: ``>= 5x`` end-to-end speedup.  ``--smoke`` runs a reduced instance in
a few seconds and exits non-zero if the CSR path fails to beat the dict
path or the connectors diverge.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import random
import sys
import time

if __package__ in (None, ""):
    _SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.generators import connectify, erdos_renyi


def build_instance(num_nodes: int, num_edges: int, query_size: int, seed: int):
    rng = random.Random(seed)
    p = 2 * num_edges / (num_nodes * (num_nodes - 1))
    graph = connectify(erdos_renyi(num_nodes, p, rng=rng), rng=rng)
    query = rng.sample(sorted(graph.nodes()), query_size)
    return graph, query


def run_backend(graph, query, backend: str, repeats: int = 1):
    """Time ``wiener_steiner``; ``repeats > 1`` keeps the best run.

    Best-of-N damps scheduler noise on shared CI runners, where a single
    unlucky run could flip the smoke gate's CSR-vs-dict comparison.
    """
    best_elapsed = math.inf
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = wiener_steiner(graph, query, backend=backend)
        best_elapsed = min(best_elapsed, time.perf_counter() - started)
    return best_elapsed, result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--edges", type=int, default=50_000)
    parser.add_argument("--query-size", type=int, default=10)
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless CSR beats dict with an "
        "identical connector (CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_backend.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Shrink to CI scale unless the caller pinned sizes explicitly.
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 600
        if args.edges == parser.get_default("edges"):
            args.edges = 1_800
        if args.query_size == parser.get_default("query_size"):
            args.query_size = 6

    graph, query = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    print(f"instance: {graph}, |Q|={len(query)}, seed={args.seed}", flush=True)

    repeats = 3 if args.smoke else 1
    csr_seconds, csr_result = run_backend(graph, query, "csr", repeats)
    print(f"csr  backend: {csr_seconds:8.3f}s  |V(H)|={csr_result.size}", flush=True)
    dict_seconds, dict_result = run_backend(graph, query, "dict", repeats)
    print(f"dict backend: {dict_seconds:8.3f}s  |V(H)|={dict_result.size}", flush=True)

    identical = csr_result.nodes == dict_result.nodes
    speedup = dict_seconds / csr_seconds if csr_seconds > 0 else float("inf")
    print(f"identical connectors: {identical}")
    print(f"speedup (dict / csr): {speedup:.2f}x")

    if not identical:
        print("FAIL: backends returned different connectors", file=sys.stderr)
        return 1
    if args.smoke:
        if csr_seconds >= dict_seconds:
            print(
                f"FAIL: CSR path ({csr_seconds:.3f}s) is not faster than the "
                f"dict path ({dict_seconds:.3f}s)",
                file=sys.stderr,
            )
            return 1
        print("smoke OK")
        return 0

    record = {
        "benchmark": "wiener_steiner backend comparison",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": len(query),
            "seed": args.seed,
        },
        "dict_seconds": round(dict_seconds, 4),
        "csr_seconds": round(csr_seconds, 4),
        "speedup": round(speedup, 2),
        "identical_connectors": identical,
        "connector_size": csr_result.size,
        "connector_wiener_index": csr_result.wiener_index,
        "candidates_scored": csr_result.metadata["candidates"],
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
