"""Benchmark: Table 2 — ws-q vs certified solver bounds.

Reduced to the two smallest datasets and |Q| ∈ {3, 5} with a tight solver
budget; the full table is ``repro table2``.
"""

from bench_util import run_once
from repro.experiments import table2


def test_table2_small_queries(benchmark):
    rows = run_once(
        benchmark,
        table2.run,
        ("football", "jazz"),
        (3, 5),
        5_000,   # node_budget
        8.0,     # time_budget_seconds
    )
    assert len(rows) == 4
    for row in rows:
        assert row.solver_lower <= row.solver_upper <= row.ws_q + 1e-9
    # The paper's small-|Q| cells are optimal or near-optimal; at least one
    # reduced cell should certify ws-q within 10% here too.
    assert any(row.error_high <= 0.10 for row in rows)
    benchmark.extra_info["table"] = table2.render(rows)
