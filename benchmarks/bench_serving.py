"""Serving benchmark: ``ConnectorService.solve_many`` vs one-shot calls.

Models the batched-serving workload the ConnectorService redesign targets:
a fixed reference graph (10k nodes / 50k edges, the backend benchmark's
instance) receives a batch of 32 query requests drawn from a Zipf-skewed
popularity distribution over a pool of distinct query sets — the standard
serving assumption that a few hot queries (trending entities, shared
dashboards) dominate traffic while the tail stays diverse.  Every distinct
query still runs the full Algorithm-1 sweep; the service's amortization
comes from building the CSR index once and from its root/candidate/result
caches deduplicating the repeated work, never from approximating.

The gate checks two things end-to-end:

* the 32 connectors returned by ``solve_many`` are **bit-identical** to 32
  independent ``wiener_steiner`` calls;
* batched serving is faster — ``>= 3x`` on the reference instance (the
  acceptance target, recorded in ``BENCH_serving.json``), strictly faster
  on the reduced ``--smoke`` instance CI runs.

Usage::

    python benchmarks/bench_serving.py            # reference instance, writes BENCH_serving.json
    python benchmarks/bench_serving.py --smoke    # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys
import time

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from bench_backend import build_instance

from repro.core.service import ConnectorService
from repro.core.wiener_steiner import wiener_steiner


def make_workload(
    graph,
    num_requests: int,
    unique_queries: int,
    query_size: int,
    seed: int,
    zipf_exponent: float = 1.1,
):
    """A Zipf-skewed request stream over a pool of distinct query sets.

    Every distinct query appears at least once (so the amount of real
    solving work is pinned), the remaining requests follow the rank
    popularity ``1/rank^s``, and the stream order is shuffled.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    pool = [rng.sample(nodes, query_size) for _ in range(unique_queries)]
    weights = [1.0 / (rank + 1) ** zipf_exponent for rank in range(len(pool))]
    requests = list(pool)
    while len(requests) < num_requests:
        requests.append(pool[rng.choices(range(len(pool)), weights)[0]])
    rng.shuffle(requests)
    return requests[:num_requests]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--edges", type=int, default=50_000)
    parser.add_argument("--query-size", type=int, default=10)
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct query sets in the request pool")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless serving beats the one-shot "
        "loop with identical connectors (CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_serving.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Shrink to CI scale unless the caller pinned sizes explicitly.
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 600
        if args.edges == parser.get_default("edges"):
            args.edges = 1_800
        if args.query_size == parser.get_default("query_size"):
            args.query_size = 6
        if args.requests == parser.get_default("requests"):
            args.requests = 12
        if args.unique == parser.get_default("unique"):
            args.unique = 4

    graph, _ = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    requests = make_workload(
        graph, args.requests, args.unique, args.query_size, args.seed
    )
    distinct = len({frozenset(q) for q in requests})
    print(
        f"instance: {graph}, {len(requests)} requests over {distinct} "
        f"distinct queries of size {args.query_size}, seed={args.seed}",
        flush=True,
    )

    started = time.perf_counter()
    one_shot = [wiener_steiner(graph, query) for query in requests]
    one_shot_seconds = time.perf_counter() - started
    print(f"one-shot loop : {one_shot_seconds:8.3f}s "
          f"({one_shot_seconds / len(requests) * 1e3:7.1f} ms/query)", flush=True)

    service = ConnectorService(graph)
    started = time.perf_counter()
    served = service.solve_many(requests)
    serving_seconds = time.perf_counter() - started
    print(f"solve_many    : {serving_seconds:8.3f}s "
          f"({serving_seconds / len(requests) * 1e3:7.1f} ms/query)", flush=True)

    identical = all(
        a.nodes == b.nodes for a, b in zip(one_shot, served)
    )
    speedup = one_shot_seconds / serving_seconds if serving_seconds > 0 else float("inf")
    stats = service.stats()
    print(f"identical connectors: {identical}")
    print(f"speedup (one-shot / serving): {speedup:.2f}x")
    print(f"cache stats: {stats}")

    if not identical:
        print("FAIL: serving returned different connectors", file=sys.stderr)
        return 1
    if args.smoke:
        if serving_seconds >= one_shot_seconds:
            print(
                f"FAIL: batched serving ({serving_seconds:.3f}s) is not faster "
                f"than {len(requests)} independent calls ({one_shot_seconds:.3f}s)",
                file=sys.stderr,
            )
            return 1
        print("smoke OK")
        return 0
    if speedup < 3.0:
        print(
            f"FAIL: reference-instance speedup {speedup:.2f}x is below the "
            "3x acceptance target",
            file=sys.stderr,
        )
        return 1

    record = {
        "benchmark": "ConnectorService batched serving vs one-shot wiener_steiner",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": args.query_size,
            "seed": args.seed,
        },
        "workload": {
            "requests": len(requests),
            "distinct_queries": distinct,
            "distribution": "zipf(1.1) over the query pool, each distinct query at least once",
        },
        "one_shot_seconds": round(one_shot_seconds, 4),
        "serving_seconds": round(serving_seconds, 4),
        "one_shot_ms_per_query": round(one_shot_seconds / len(requests) * 1e3, 2),
        "serving_ms_per_query": round(serving_seconds / len(requests) * 1e3, 2),
        "speedup": round(speedup, 2),
        "identical_connectors": identical,
        "service_stats": {
            "queries_served": stats.queries_served,
            "result_hits": stats.result_hits,
            "result_misses": stats.result_misses,
            "candidate_hits": stats.candidate_hits,
            "candidate_misses": stats.candidate_misses,
            "score_hits": stats.score_hits,
            "score_misses": stats.score_misses,
            "cached_roots": stats.cached_roots,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
