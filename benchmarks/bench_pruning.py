"""Certified pruning + λ work sharing vs the historical per-pair sweep.

Measures what PR 8's tentpole is *for*: the λ×root sweep of
:meth:`~repro.core.service.ConnectorService._solve_ws` with (a) one
batched reweighting pass per root serving the whole λ grid and (b)
certified landmark-bound pruning of ``(root, λ)`` pairs — against the
historical baseline that built one candidate per pair and scored all of
them.  Three paths over one instance (the 10k-node / 50k-edge
reference) and one mixed workload:

* **unshared** — the pre-PR sweep, emulated pair by pair through the
  engines' single-λ ``candidate()`` entry point (result-memoized, as the
  historical service was);
* **shared** — the service with ``prune=False``: work sharing only;
* **pruned** — the service at defaults: work sharing + certified
  pruning.

The workload mixes the standard Zipf request stream with *root-ablation*
queries (explicit ``roots`` lists extending the Lemma-5 default with
distant vertices — the robustness-ablation pattern of the experiment
harness).  Ablation roots are where root-level pruning demonstrably
fires: a distant root's certified floor exceeds the incumbent at its
first encounter and its whole λ batch is never built.  On the default
Lemma-5 workload the λ sharing and candidate-level score pruning carry
the win.

Everything is gated on **bit-identity**: pruned and unpruned paths must
return the same winning ``(nodes, root, λ)`` on every request, the dict
and CSR backends must agree under default pruning, warm re-serves must
equal cold ones, and all of it must survive a mutation epoch
(``apply_delta`` + spot checks against one-shot ``wiener_steiner`` on
the mutated graph).  The prune counters must exactly partition the
sweep's pair count.  The full run additionally requires the
pruned+shared path to beat the unshared baseline on ms/query and writes
``BENCH_pruning.json``.

Usage::

    python benchmarks/bench_pruning.py           # reference instance, writes BENCH_pruning.json
    python benchmarks/bench_pruning.py --smoke   # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import random
import sys
import time

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from bench_backend import build_instance
from bench_mutation import make_delta
from bench_serving import make_workload
from bench_sharded import identical

from repro.core.service import ConnectorService, _lambda_grid, _root_list
from repro.core.options import SolveOptions
from repro.core.wiener_steiner import wiener_steiner
from repro.graphs.csr import HAS_NUMPY


def winner(result_or_tuple):
    """The certified-identical part of an answer: ``(nodes, root, λ)``.

    Pruned and unpruned sweeps agree on the winner by construction; the
    ``candidates`` trace may legitimately shrink under pruning (pruned
    roots never materialize their candidate sets), so cross-prune-setting
    comparisons pin the winner while same-setting comparisons use the
    full ``identical()`` contract.
    """
    if isinstance(result_or_tuple, tuple):
        return result_or_tuple
    return (
        result_or_tuple.nodes,
        result_or_tuple.metadata["root"],
        result_or_tuple.metadata["lambda"],
    )


def unshared_sweep(service, options, query, memo):
    """The historical sweep: one candidate construction per (root, λ) pair.

    Same grid, same canonical order, same strict-improvement selection,
    same result memo the old service had — but every pair pays its own
    reweighting pass through the engines' single-λ ``candidate()`` entry
    point, and nothing is ever pruned.  This is the baseline the tentpole
    replaced, kept runnable here so the comparison stays honest.
    """
    query_set = frozenset(query)
    memo_key = (query_set, options)
    if memo_key in memo:
        return memo[memo_key]
    backend_name = service._backend_name(options)
    engine = service._engine(backend_name)
    roots = _root_list(options, query_set)
    for root in roots:
        engine.unreachable_queries(root, query_set)
    grid = (
        list(options.lambda_values)
        if options.lambda_values is not None
        else _lambda_grid(service.num_nodes, options.beta)
    )
    best_key = math.inf
    best = None
    scored: dict = {}
    for lam in grid:
        for root in roots:
            candidate = engine.candidate(root, lam, query_set, options.adjust)
            if candidate in scored:
                continue
            key = service._score_candidate(engine, candidate, root, options)
            scored[candidate] = key
            if key < best_key:
                best_key = key
                best = (candidate, root, lam)
    memo[memo_key] = best
    return best


def make_requests(graph, args, rng):
    """The mixed workload: Zipf default queries + root-ablation queries.

    Returns ``[(query, options_override_or_None), ...]``; ablation
    entries carry an explicit roots tuple extending the query with
    ``--extra-roots`` random vertices.
    """
    stream = make_workload(
        graph, args.requests, args.unique, args.query_size, args.seed
    )
    requests = [(query, None) for query in stream]
    nodes = sorted(graph.nodes())
    distinct = []
    seen = set()
    for query in stream:
        if frozenset(query) not in seen:
            seen.add(frozenset(query))
            distinct.append(query)
    for query in distinct[: args.ablation]:
        roots = tuple(
            dict.fromkeys(list(query) + rng.sample(nodes, args.extra_roots))
        )
        requests.append((query, roots))
    return requests


def serve(service, options, requests):
    """Serve the mixed stream through a service; (winners, seconds)."""
    winners = []
    started = time.perf_counter()
    for query, roots in requests:
        opts = options if roots is None else options.replace(roots=roots)
        winners.append(winner(service.solve(query, opts)))
    return winners, time.perf_counter() - started


def serve_unshared(service, options, requests):
    winners = []
    memo: dict = {}
    started = time.perf_counter()
    for query, roots in requests:
        opts = options if roots is None else options.replace(roots=roots)
        winners.append(winner(unshared_sweep(service, opts, query, memo)))
    return winners, time.perf_counter() - started


def expected_pairs(graph, options, requests):
    """The exact (λ, root) pair count the counters must partition."""
    grid = len(_lambda_grid(graph.num_nodes, options.beta))
    total = 0
    seen = set()
    for query, roots in requests:
        opts = options if roots is None else options.replace(roots=roots)
        key = (frozenset(query), opts)
        if key in seen:  # result-cache hit: no sweep, no pairs
            continue
        seen.add(key)
        total += grid * len(_root_list(opts, frozenset(query)))
    return total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--edges", type=int, default=50_000)
    parser.add_argument("--query-size", type=int, default=4)
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct query sets in the Zipf stream")
    parser.add_argument("--ablation", type=int, default=8,
                        help="root-ablation requests appended to the stream")
    parser.add_argument("--extra-roots", type=int, default=8,
                        help="random extra roots per ablation request")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of-N timing for each path")
    parser.add_argument("--delta-ops", type=int, default=6,
                        help="edge mutations in the epoch-flip delta")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless pruned and unpruned sweeps "
        "are bit-identical (cold/warm, across backends, across the "
        "mutation epoch), pruning fires, and the counters partition the "
        "sweep (CI regression gate; no timing gate, no file written)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_pruning.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 1_500
        if args.edges == parser.get_default("edges"):
            args.edges = 6_000
        if args.requests == parser.get_default("requests"):
            args.requests = 8
        if args.unique == parser.get_default("unique"):
            args.unique = 4
        if args.ablation == parser.get_default("ablation"):
            args.ablation = 4
        if args.repeats == parser.get_default("repeats"):
            args.repeats = 1

    rng = random.Random(args.seed)
    graph, _ = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    requests = make_requests(graph, args, rng)
    backend = "csr" if HAS_NUMPY else "dict"
    pruned_opts = SolveOptions(backend=backend)
    unpruned_opts = pruned_opts.replace(prune=False)
    print(
        f"instance: {graph}, {len(requests)} requests "
        f"({args.requests} Zipf + {args.ablation} root-ablation with "
        f"{args.extra_roots} extra roots), backend={backend}, "
        f"seed={args.seed}",
        flush=True,
    )

    # --- the three paths, each cold, best-of-N --------------------------
    def best_of(run):
        best_seconds = math.inf
        winners = None
        for _ in range(args.repeats):
            outcome, seconds = run()
            if seconds < best_seconds:
                best_seconds = seconds
            winners = outcome
        return winners, best_seconds

    unshared_winners, unshared_seconds = best_of(
        lambda: serve_unshared(
            ConnectorService(graph, unpruned_opts), unpruned_opts, requests
        )
    )
    shared_winners, shared_seconds = best_of(
        lambda: serve(
            ConnectorService(graph, unpruned_opts), unpruned_opts, requests
        )
    )
    pruned_service = ConnectorService(graph, pruned_opts)
    pruned_winners, pruned_seconds = serve(pruned_service, pruned_opts, requests)
    for _ in range(args.repeats - 1):
        fresh = ConnectorService(graph, pruned_opts)
        _, seconds = serve(fresh, pruned_opts, requests)
        pruned_seconds = min(pruned_seconds, seconds)
    stats = pruned_service.stats()

    per_query = len(requests)
    unshared_ms = unshared_seconds / per_query * 1e3
    shared_ms = shared_seconds / per_query * 1e3
    pruned_ms = pruned_seconds / per_query * 1e3
    print(f"unshared sweep : {unshared_seconds:8.3f}s ({unshared_ms:7.1f} ms/query)")
    print(f"λ-shared       : {shared_seconds:8.3f}s ({shared_ms:7.1f} ms/query)")
    print(f"shared + pruned: {pruned_seconds:8.3f}s ({pruned_ms:7.1f} ms/query)")
    print(f"prune counters : {stats.pairs_pruned} pruned / "
          f"{stats.pairs_scored} scored ({stats.prune_rate:.1%} of pairs)",
          flush=True)

    # --- identity: the three paths agree on every winner ----------------
    winners_agree = (
        unshared_winners == shared_winners == pruned_winners
    )

    # --- identity: warm equals cold under pruning -----------------------
    warm_winners, _ = serve(pruned_service, pruned_opts, requests)
    warm_identical = warm_winners == pruned_winners

    # --- identity: dict and CSR agree under default pruning -------------
    cross_backend = True
    if HAS_NUMPY:
        dict_service = ConnectorService(graph, SolveOptions(backend="dict"))
        spot = [q for q, roots in requests if roots is None][:2]
        cross_backend = all(
            identical(dict_service.solve(q), pruned_service.solve(q))
            for q in spot
        )

    # --- identity across a mutation epoch -------------------------------
    delta = make_delta(graph, rng, args.delta_ops)
    mutated = graph.copy()
    delta.apply_to_graph(mutated)
    epoch = pruned_service.apply_delta(delta)
    unpruned_after = ConnectorService(mutated, unpruned_opts)
    post_requests = requests[:3] + requests[-2:]
    post_identical = True
    for query, roots in post_requests:
        p_opts = pruned_opts if roots is None else pruned_opts.replace(roots=roots)
        u_opts = unpruned_opts if roots is None else unpruned_opts.replace(roots=roots)
        if winner(pruned_service.solve(query, p_opts)) != winner(
            unpruned_after.solve(query, u_opts)
        ):
            post_identical = False
    spot_query = requests[0][0]
    # One-shot wiener_steiner shares the default (pruned) configuration,
    # so the full identical() contract applies, candidates trace included.
    spot_identical = identical(
        pruned_service.solve(spot_query), wiener_steiner(mutated, spot_query)
    )

    # --- counters partition the sweep ------------------------------------
    total_pairs = expected_pairs(graph, pruned_opts, requests)
    counters_partition = stats.pairs_pruned + stats.pairs_scored == total_pairs

    print(f"identity: paths-agree={winners_agree} warm={warm_identical} "
          f"cross-backend={cross_backend} post-epoch={post_identical} "
          f"spot-vs-one-shot={spot_identical} (epoch {epoch})")

    failures = []
    if not winners_agree:
        failures.append("unshared, shared, and pruned sweeps disagree")
    if not warm_identical:
        failures.append("warm re-serve differs from the cold pruned sweep")
    if not cross_backend:
        failures.append("dict and csr backends disagree under default pruning")
    if not post_identical:
        failures.append("pruned and unpruned sweeps disagree after the epoch flip")
    if not spot_identical:
        failures.append("post-delta answer differs from one-shot wiener_steiner")
    if epoch != 1:
        failures.append(f"epoch did not advance to 1 (saw {epoch})")
    if not counters_partition:
        failures.append(
            f"counters do not partition the sweep: {stats.pairs_pruned} + "
            f"{stats.pairs_scored} != {total_pairs}"
        )
    if stats.pairs_pruned <= 0:
        failures.append("pruning never fired on the mixed workload")
    if not args.smoke and pruned_seconds >= unshared_seconds:
        failures.append(
            f"pruned+shared sweep ({pruned_ms:.1f} ms/query) did not beat "
            f"the unshared baseline ({unshared_ms:.1f} ms/query)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.smoke:
        print("smoke OK")
        return 0

    record = {
        "benchmark": "certified λ×root pruning + λ work sharing vs the "
                     "historical per-pair sweep",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": args.query_size,
            "seed": args.seed,
        },
        "workload": {
            "zipf_requests": args.requests,
            "distinct_queries": args.unique,
            "ablation_requests": args.ablation,
            "extra_roots_per_ablation": args.extra_roots,
            "note": "root-ablation requests extend the Lemma-5 default "
                    "roots with random distant vertices — the regime "
                    "where certified root-level pruning fires",
        },
        "backend": backend,
        "repeats": args.repeats,
        "unshared_ms_per_query": round(unshared_ms, 2),
        "shared_ms_per_query": round(shared_ms, 2),
        "pruned_ms_per_query": round(pruned_ms, 2),
        "speedup_shared_over_unshared": round(unshared_seconds / shared_seconds, 3),
        "speedup_pruned_over_unshared": round(unshared_seconds / pruned_seconds, 3),
        "pruning": {
            "pairs_pruned": stats.pairs_pruned,
            "pairs_scored": stats.pairs_scored,
            "prune_rate": round(stats.prune_rate, 4),
            "counters_partition_sweep": counters_partition,
        },
        "identical_connectors": {
            "paths_agree": winners_agree,
            "warm_equals_cold": warm_identical,
            "dict_equals_csr": cross_backend,
            "across_mutation_epoch": post_identical,
            "spot_vs_one_shot": spot_identical,
        },
        "epoch_after": epoch,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
