"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one paper table or figure (at a reduced
but shape-preserving scale) under ``pytest --benchmark-only``; the
rendered output is attached to the benchmark's ``extra_info`` so a run of
the harness doubles as a reproduction report.

Heavy experiment benchmarks use ``benchmark.pedantic`` with a single round:
we are timing a whole experiment, not a microsecond kernel.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def karate():
    from repro.datasets import karate_club

    return karate_club()


@pytest.fixture(scope="session")
def oregon_standin():
    from repro.datasets import load_dataset

    return load_dataset("oregon")


@pytest.fixture(scope="session")
def email_standin():
    from repro.datasets import load_dataset

    return load_dataset("email")
