"""Benchmark: Table 3 — solution characterization across the five methods.

One dataset (email stand-in), |Q| = 10 at average distance 4, two runs.
Asserts the paper's headline ordering: ws-q's solutions are smaller and
more central than the community-oriented methods'.
"""

from bench_util import run_once
from repro.experiments import table3


def test_table3_email(benchmark):
    table = run_once(
        benchmark,
        table3.run,
        ("email",),  # datasets
        10,          # query_size
        4.0,         # avg_distance
        2,           # runs
    )
    stats = table["email"]
    assert stats["ws-q"].size <= stats["ppr"].size
    assert stats["ws-q"].size <= stats["cps"].size
    assert stats["ws-q"].size <= stats["ctp"].size
    assert stats["ws-q"].wiener <= stats["ctp"].wiener
    assert stats["ws-q"].betweenness >= stats["ctp"].betweenness
    benchmark.extra_info["table"] = table3.render(table)
