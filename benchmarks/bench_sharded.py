"""Sharded serving benchmark: ``ShardedConnectorService`` vs one service.

Models the scale-out step after batched serving (``bench_serving.py``) —
and measures the thing sharding is actually *for* (ROADMAP: "partition
the result/candidate caches and the root BFS state across several service
processes").  The 10k-node / 50k-edge reference graph receives a
**64-request** Zipf-skewed stream over a pool of distinct query sets,
arriving in fixed-size serving windows (one ``solve_many`` per window,
caches persisting across windows, exactly like a server draining a
request queue).

Both deployments get the **same per-process cache budget** — enough
resident state for ``--cache-queries`` hot queries per process, applied
to all four LRU layers (results, root BFS, candidates, scores).  That is
the memory model that makes sharding worth its processes:

* the **single service** must fit the whole hot set into one process's
  budget; the reference workload's 16 distinct queries blow through a
  4-query budget, so re-asks keep missing and re-sweeping;
* the **sharded service** consistent-hashes the key space over N shard
  processes, so each shard only needs to hold its own share — the
  aggregate budget covers the hot set and re-asks stay warm.

The resulting speedup is a *cache-capacity* win, measured as wall clock:
it holds even on a single core (each avoided miss is an avoided sweep),
and on multi-core machines shard parallelism compounds it, since the
misses that do happen run concurrently.

The gate checks two things end-to-end:

* the 64 connectors returned by the sharded router are **bit-identical**
  (vertex sets and sweep traces) to the single ``ConnectorService`` — the
  serving benchmark pins that baseline, in turn, to one-shot
  ``wiener_steiner``;
* sharded serving is faster — ``>= 2x`` on the reference instance (the
  acceptance target, recorded in ``BENCH_sharded.json``), strictly
  faster on the reduced ``--smoke`` instance CI runs.

Usage::

    python benchmarks/bench_sharded.py            # reference instance, writes BENCH_sharded.json
    python benchmarks/bench_sharded.py --smoke    # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from bench_backend import build_instance
from bench_serving import make_workload

from repro.core.service import ConnectorService
from repro.core.sharded import ShardedConnectorService
from repro.core.wiener_steiner import _lambda_grid


def identical(a, b) -> bool:
    """Bit-identity of two results: same vertex set and same sweep trace."""
    return (
        a.nodes == b.nodes
        and a.metadata.get("root") == b.metadata.get("root")
        and a.metadata.get("lambda") == b.metadata.get("lambda")
        and a.metadata.get("candidates") == b.metadata.get("candidates")
    )


def cache_limits(budget_queries: int, query_size: int, num_nodes: int) -> dict:
    """Per-process LRU bounds holding ``budget_queries`` full working sets.

    One query's sweep touches ``query_size`` roots and up to
    ``query_size × |λ-grid|`` candidates/scores; the result layer holds the
    finished answer.  Scaling all four layers together models a fixed
    memory budget per process — the quantity sharding multiplies.
    """
    grid = len(_lambda_grid(num_nodes, 1.0))
    return {
        "max_cached_results": budget_queries,
        "max_cached_roots": budget_queries * query_size,
        "max_cached_candidates": budget_queries * query_size * grid,
        "max_cached_scores": budget_queries * query_size * grid,
    }


def serve_windows(service, requests, window: int):
    """Drain the stream through ``solve_many`` windows; returns results + seconds."""
    results = []
    started = time.perf_counter()
    for begin in range(0, len(requests), window):
        results.extend(service.solve_many(requests[begin:begin + window]))
    return results, time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--edges", type=int, default=50_000)
    parser.add_argument("--query-size", type=int, default=10)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--unique", type=int, default=16,
                        help="distinct query sets in the request pool")
    parser.add_argument("--window", type=int, default=8,
                        help="requests per serving window (one solve_many each)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--cache-queries", type=int, default=4,
                        help="per-process cache budget, in resident query "
                             "working sets (same for both deployments)")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless sharded serving beats the "
        "single service with identical connectors (CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_sharded.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Shrink to CI scale unless the caller pinned sizes explicitly.  The
        # sweeps must still dwarf the shard spawn cost, so this instance is
        # larger than the serving smoke's.
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 2_500
        if args.edges == parser.get_default("edges"):
            args.edges = 10_000
        if args.query_size == parser.get_default("query_size"):
            args.query_size = 8
        if args.requests == parser.get_default("requests"):
            args.requests = 32
        if args.unique == parser.get_default("unique"):
            args.unique = 6
        if args.cache_queries == parser.get_default("cache_queries"):
            args.cache_queries = 2

    graph, _ = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    requests = make_workload(
        graph, args.requests, args.unique, args.query_size, args.seed
    )
    distinct = len({frozenset(q) for q in requests})
    limits = cache_limits(args.cache_queries, args.query_size, graph.num_nodes)
    print(
        f"instance: {graph}, {len(requests)} requests over {distinct} "
        f"distinct queries of size {args.query_size}, windows of "
        f"{args.window}, {args.shards} shards, "
        f"{args.cache_queries}-query budget/process, seed={args.seed}",
        flush=True,
    )

    with ConnectorService(graph, **limits) as single:
        baseline, single_seconds = serve_windows(single, requests, args.window)
        single_sweeps = single.stats().result_misses
    print(f"single service : {single_seconds:8.3f}s "
          f"({single_seconds / len(requests) * 1e3:7.1f} ms/query, "
          f"{single_sweeps} cold sweeps)", flush=True)

    with ShardedConnectorService(graph, n_shards=args.shards, **limits) as sharded:
        served, sharded_seconds = serve_windows(sharded, requests, args.window)
        stats = sharded.stats()
    sharded_sweeps = sum(shard.result_misses for shard in stats.shards)
    print(f"sharded x{args.shards:<5d} : {sharded_seconds:8.3f}s "
          f"({sharded_seconds / len(requests) * 1e3:7.1f} ms/query, "
          f"{sharded_sweeps} cold sweeps)", flush=True)

    all_identical = all(identical(a, b) for a, b in zip(baseline, served))
    speedup = single_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
    per_shard_served = [shard.queries_served for shard in stats.shards]
    print(f"identical connectors: {all_identical}")
    print(f"speedup (single / sharded): {speedup:.2f}x")
    print(f"router: routed={stats.requests_routed} "
          f"deduped={stats.inflight_deduped} per-shard={per_shard_served}")

    if not all_identical:
        print("FAIL: sharded serving returned different connectors", file=sys.stderr)
        return 1
    if args.smoke:
        if sharded_seconds >= single_seconds:
            print(
                f"FAIL: sharded serving ({sharded_seconds:.3f}s) is not faster "
                f"than the single service ({single_seconds:.3f}s)",
                file=sys.stderr,
            )
            return 1
        print("smoke OK")
        return 0
    if speedup < 2.0:
        print(
            f"FAIL: reference-instance speedup {speedup:.2f}x is below the "
            "2x acceptance target",
            file=sys.stderr,
        )
        return 1

    record = {
        "benchmark": "ShardedConnectorService vs single ConnectorService, windowed Zipf stream",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": args.query_size,
            "seed": args.seed,
        },
        "workload": {
            "requests": len(requests),
            "distinct_queries": distinct,
            "window": args.window,
            "distribution": "zipf(1.1) over the query pool, each distinct query at least once",
            "cache_budget_queries_per_process": args.cache_queries,
        },
        "shards": args.shards,
        "single_service_seconds": round(single_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "single_service_ms_per_query": round(single_seconds / len(requests) * 1e3, 2),
        "sharded_ms_per_query": round(sharded_seconds / len(requests) * 1e3, 2),
        "single_service_cold_sweeps": single_sweeps,
        "sharded_cold_sweeps": sharded_sweeps,
        "speedup": round(speedup, 2),
        "identical_connectors": all_identical,
        "router_stats": {
            "requests_routed": stats.requests_routed,
            "inflight_deduped": stats.inflight_deduped,
            "per_shard_queries_served": per_shard_served,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
