"""Benchmark: Table 5 / Figure 7 — the Twitter #kdd2014 case study."""

from bench_util import run_once
from repro.experiments import table5


def test_table5_twitter(benchmark):
    result = run_once(benchmark, table5.run)
    added = {user for group in result.added for user in group}
    # The connectors must surface at least one of the planted celebrities.
    assert added & {"kdnuggets", "drewconway"}
    # Added users rank well within their communities (paper: top-10).
    community_ranks = [row.degree_rank_community for row in result.influence]
    assert min(community_ranks) <= 3
    benchmark.extra_info["table"] = table5.render(result)
