"""Gateway serving benchmark: ``AsyncGateway`` vs naive per-request solving.

Models the workload the async front-end exists for: requests arrive *one
at a time, concurrently* — a Poisson process (exponential inter-arrival
gaps) over a Zipf-skewed pool of distinct query sets on the 10k-node /
50k-edge reference graph.  Two deployments drain the same arrival
schedule end to end:

* **naive per-request solving** — what an asyncio application does
  without a serving layer: each arrival dispatches its own one-shot
  ``wiener_steiner`` call to a thread executor.  Every request rebuilds
  the index and re-runs every sweep, repeats included — there is no
  shared state to amortize into;
* **the gateway** — one persistent :class:`ConnectorService` behind an
  :class:`AsyncGateway`: arrivals are micro-batched into ``solve_many``
  windows, identical in-flight requests coalesce onto one solve, and the
  service's index/BFS/candidate/result caches persist across the stream.

Throughput is measured as completed requests per second of makespan
(first arrival to last completion) and latency per request from arrival
to resolution (p50/p95).  The arrival schedule is deterministic (seeded)
and *identical* for both deployments; the offered rate saturates the
naive server so the comparison measures serving capacity, not idle time.

The gate checks two things end-to-end:

* every connector the gateway returns is **bit-identical** (vertex set
  and sweep trace) to the naive one-shot solve of the same request;
* the gateway is faster — ``>= 2x`` throughput on the reference instance
  (the acceptance target, recorded in ``BENCH_gateway.json``), strictly
  faster on the reduced ``--smoke`` instance CI runs.

Usage::

    python benchmarks/bench_gateway.py            # reference instance, writes BENCH_gateway.json
    python benchmarks/bench_gateway.py --smoke    # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import random
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from bench_backend import build_instance
from bench_serving import make_workload
from bench_sharded import identical

from repro.core.gateway import AsyncGateway
from repro.core.service import ConnectorService
from repro.core.wiener_steiner import wiener_steiner


def make_arrivals(num_requests: int, mean_gap_ms: float, seed: int) -> list[float]:
    """Poisson-process arrival offsets (seconds from stream start)."""
    rng = random.Random(seed)
    clock = 0.0
    offsets = []
    for _ in range(num_requests):
        clock += rng.expovariate(1.0 / (mean_gap_ms / 1000.0))
        offsets.append(clock)
    return offsets


async def drain_stream(arrivals, requests, submit):
    """Replay the arrival schedule; returns (results, latencies, makespan).

    ``submit(query)`` is an awaitable per-request solve.  Each request
    task sleeps until its arrival offset, then measures arrival→result
    latency — queueing delay included, which is the point.
    """
    started = time.perf_counter()

    async def one(offset, query):
        await asyncio.sleep(max(0.0, offset - (time.perf_counter() - started)))
        arrived = time.perf_counter()
        result = await submit(query)
        return result, time.perf_counter() - arrived

    pairs = await asyncio.gather(
        *(one(offset, query) for offset, query in zip(arrivals, requests))
    )
    makespan = time.perf_counter() - started
    return [p[0] for p in pairs], [p[1] for p in pairs], makespan


def run_naive(graph, requests, arrivals, workers: int):
    """One-shot ``wiener_steiner`` per arrival on a thread executor."""
    async def scenario():
        loop = asyncio.get_running_loop()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return await drain_stream(
                arrivals,
                requests,
                lambda query: loop.run_in_executor(
                    pool, wiener_steiner, graph, query
                ),
            )

    return asyncio.run(scenario())


def run_gateway(graph, requests, arrivals, max_batch: int, max_wait_ms: float):
    """The same stream through ``AsyncGateway`` over one warm service."""
    async def scenario():
        with ConnectorService(graph) as service:
            async with AsyncGateway(
                service, max_batch=max_batch, max_wait_ms=max_wait_ms
            ) as gateway:
                results, latencies, makespan = await drain_stream(
                    arrivals, requests, gateway.asolve
                )
                return (
                    results, latencies, makespan,
                    gateway.stats(), service.stats(),
                )

    return asyncio.run(scenario())


def percentile(latencies, fraction: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--edges", type=int, default=50_000)
    parser.add_argument("--query-size", type=int, default=10)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--unique", type=int, default=8,
                        help="distinct query sets in the request pool")
    parser.add_argument("--mean-gap-ms", type=float, default=20.0,
                        help="mean Poisson inter-arrival gap; well below "
                             "the one-shot solve time, so the naive server "
                             "is saturated and throughput measures capacity")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--naive-workers", type=int, default=4,
                        help="thread pool size of the naive deployment "
                             "(generous: the sweeps are GIL-bound anyway)")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless the gateway beats naive "
        "per-request solving with identical connectors (CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_gateway.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Shrink to CI scale unless the caller pinned sizes explicitly.
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 600
        if args.edges == parser.get_default("edges"):
            args.edges = 1_800
        if args.query_size == parser.get_default("query_size"):
            args.query_size = 6
        if args.requests == parser.get_default("requests"):
            args.requests = 16
        if args.unique == parser.get_default("unique"):
            args.unique = 4
        if args.mean_gap_ms == parser.get_default("mean_gap_ms"):
            args.mean_gap_ms = 5.0

    graph, _ = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    requests = make_workload(
        graph, args.requests, args.unique, args.query_size, args.seed
    )
    arrivals = make_arrivals(args.requests, args.mean_gap_ms, args.seed)
    distinct = len({frozenset(q) for q in requests})
    print(
        f"instance: {graph}, {len(requests)} Poisson arrivals "
        f"(mean gap {args.mean_gap_ms:.0f} ms) over {distinct} distinct "
        f"queries of size {args.query_size}, seed={args.seed}",
        flush=True,
    )

    naive_results, naive_latencies, naive_span = run_naive(
        graph, requests, arrivals, args.naive_workers
    )
    naive_throughput = len(requests) / naive_span
    print(
        f"naive per-request : {naive_span:8.3f}s makespan "
        f"({naive_throughput:6.2f} req/s, "
        f"p50 {percentile(naive_latencies, 0.50) * 1e3:7.1f} ms, "
        f"p95 {percentile(naive_latencies, 0.95) * 1e3:7.1f} ms)",
        flush=True,
    )

    gateway_results, gateway_latencies, gateway_span, stats, service_stats = (
        run_gateway(graph, requests, arrivals, args.max_batch, args.max_wait_ms)
    )
    gateway_throughput = len(requests) / gateway_span
    print(
        f"gateway           : {gateway_span:8.3f}s makespan "
        f"({gateway_throughput:6.2f} req/s, "
        f"p50 {percentile(gateway_latencies, 0.50) * 1e3:7.1f} ms, "
        f"p95 {percentile(gateway_latencies, 0.95) * 1e3:7.1f} ms)",
        flush=True,
    )

    all_identical = all(
        identical(a, b) for a, b in zip(naive_results, gateway_results)
    )
    speedup = gateway_throughput / naive_throughput
    print(f"identical connectors: {all_identical}")
    print(f"throughput speedup (gateway / naive): {speedup:.2f}x")
    print(
        f"gateway: {stats.windows_dispatched} windows "
        f"(mean size {stats.mean_window_size:.1f}), "
        f"{stats.coalesced} coalesced, {stats.shed} shed",
        flush=True,
    )

    if not all_identical:
        print("FAIL: gateway returned different connectors", file=sys.stderr)
        return 1
    if args.smoke:
        if gateway_throughput <= naive_throughput:
            print(
                f"FAIL: gateway throughput ({gateway_throughput:.2f} req/s) "
                f"does not beat naive per-request solving "
                f"({naive_throughput:.2f} req/s)",
                file=sys.stderr,
            )
            return 1
        print("smoke OK")
        return 0
    if speedup < 2.0:
        print(
            f"FAIL: reference-instance throughput speedup {speedup:.2f}x is "
            "below the 2x acceptance target",
            file=sys.stderr,
        )
        return 1

    record = {
        "benchmark": "AsyncGateway micro-batched serving vs naive per-request async solving",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": args.query_size,
            "seed": args.seed,
        },
        "workload": {
            "requests": len(requests),
            "distinct_queries": distinct,
            "arrivals": "poisson",
            "mean_gap_ms": args.mean_gap_ms,
            "distribution": "zipf(1.1) over the query pool, each distinct query at least once",
        },
        "gateway": {
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "windows_dispatched": stats.windows_dispatched,
            "mean_window_size": round(stats.mean_window_size, 2),
            "coalesced": stats.coalesced,
            "shed": stats.shed,
        },
        "service_cache_hit_rates": {
            layer: round(service_stats.hit_rate(layer), 3)
            for layer in ("result", "candidate", "score")
        },
        "naive_workers": args.naive_workers,
        "naive_makespan_seconds": round(naive_span, 4),
        "gateway_makespan_seconds": round(gateway_span, 4),
        "naive_throughput_rps": round(naive_throughput, 3),
        "gateway_throughput_rps": round(gateway_throughput, 3),
        "naive_latency_ms": {
            "p50": round(percentile(naive_latencies, 0.50) * 1e3, 2),
            "p95": round(percentile(naive_latencies, 0.95) * 1e3, 2),
            "mean": round(statistics.fmean(naive_latencies) * 1e3, 2),
        },
        "gateway_latency_ms": {
            "p50": round(percentile(gateway_latencies, 0.50) * 1e3, 2),
            "p95": round(percentile(gateway_latencies, 0.95) * 1e3, 2),
            "mean": round(statistics.fmean(gateway_latencies) * 1e3, 2),
        },
        "throughput_speedup": round(speedup, 2),
        "identical_connectors": all_identical,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
