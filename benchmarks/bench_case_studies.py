"""Benchmark: Figure 6 — the PPI case study."""

from bench_util import run_once
from repro.experiments import case_studies


def test_figure6_ppi(benchmark):
    result = run_once(benchmark, case_studies.run)
    # The connector's added vertices are exactly the planted disease hubs.
    assert set(result.added_hubs) == {"p53", "HSP90", "GSK3B", "SNCA"}
    assert all(hop.disease_overlap for hop in result.next_hops)
    benchmark.extra_info["table"] = case_studies.render(result)
