"""Benchmark: Figure 3 — solution statistics vs |Q| and query spread.

Reduced sweep on the oregon stand-in; asserts the direction of the paper's
trends rather than absolute values.
"""

from bench_util import run_once
from repro.experiments import figure3


def test_figure3_sweeps(benchmark):
    size_sweep, distance_sweep = run_once(
        benchmark,
        figure3.run,
        "oregon",
        (5, 10),       # sizes
        (2.0, 4.0),    # distances
        1,             # runs
    )
    sizes = size_sweep.series(lambda s: float(s.size))
    # ws-q stays at most as large as the community methods at every point.
    for i in range(len(size_sweep.xs)):
        assert sizes["ws-q"][i] <= sizes["ppr"][i]
        assert sizes["ws-q"][i] <= sizes["ctp"][i]
    benchmark.extra_info["table"] = figure3.render(size_sweep, distance_sweep)
