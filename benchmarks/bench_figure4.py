"""Benchmark: Figure 4 — ws-q vs st on the Steiner benchmark suites."""

from bench_util import run_once
from repro.experiments import figure4


def test_figure4_cdfs(benchmark):
    results = run_once(benchmark, figure4.run, 3, 3)
    all_comparisons = results["puc"] + results["vienna"]
    assert len(all_comparisons) == 6
    # ws-q's Wiener index is never meaningfully worse than st's …
    assert all(c.wiener_ratio >= 0.95 for c in all_comparisons)
    # … and wins somewhere (the whole point of the objective).
    assert any(c.wiener_ratio > 1.0 for c in all_comparisons)
    benchmark.extra_info["table"] = figure4.render(results)
