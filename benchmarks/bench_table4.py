"""Benchmark: Table 4 — sc vs dc community workloads on the dblp stand-in.

Asserts the paper's finding: community methods blow up on queries spanning
different communities far more than ws-q/st do.
"""

from bench_util import run_once
from repro.experiments import table4


def test_table4_dblp(benchmark):
    rows = run_once(
        benchmark,
        table4.run,
        ("dblp",),   # datasets
        (3, 5),      # sizes
        3,           # queries_per_size
    )
    by_method = {row.method: row for row in rows}
    # dc queries must cost the community methods more than ws-q.
    assert by_method["cps"].dc_size > by_method["ws-q"].dc_size
    assert by_method["ppr"].dc_size > by_method["ws-q"].dc_size
    assert by_method["ctp"].dc_size > by_method["ws-q"].dc_size
    # ws-q's own dc/sc ratio stays modest (paper: ~1.4).
    assert by_method["ws-q"].ratio < 3.0
    benchmark.extra_info["table"] = table4.render(rows)
