"""Million-node scenario benchmark: stream-built graph, replayed trace, SLOs.

The end-to-end scenario the loadgen subsystem exists for, with every
layer at its scale target:

* **instance** — a Barabási–Albert scale-free graph built through the
  *edge-stream* path: :func:`barabasi_albert_edges` feeds
  :meth:`CSRGraph.from_edge_stream` directly, so the 10^6-node host
  exists only as CSR arrays — no dict ``Graph`` is ever materialized;
* **tower** — a graph-less :class:`ShardedConnectorService` over the
  bare arrays, behind an :class:`AsyncGateway` and a
  :class:`GatewayServer` TCP socket: the production stack, in process;
* **load** — a deterministic synthesized trace (Zipf-skewed pool,
  Poisson arrivals with a burst envelope) fired open-loop by
  :func:`replay_trace` through the real wire protocol;
* **gates** — an SLO envelope over the replay report (no errors, no
  unexplained shedding, a latency ceiling), plus the identity contract:
  replayed answers are spot-checked bit-identical to cold one-shot
  ``wiener_steiner`` solves on the same CSR arrays.

Usage::

    python benchmarks/bench_scale.py            # 10^6-node run, writes BENCH_scale.json
    python benchmarks/bench_scale.py --smoke    # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import platform
import random
import sys
import time

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from repro.core.gateway import AsyncGateway
from repro.core.service import ConnectorService
from repro.core.sharded import ShardedConnectorService
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import barabasi_albert_edges
from repro.loadgen.replay import replay_trace
from repro.loadgen.slo import SLO
from repro.loadgen.trace import synthesize
from repro.serving.protocol import canonical_sort
from repro.serving.server import GatewayServer


def build_csr(nodes: int, attachment: int, seed: int) -> CSRGraph:
    """Stream a BA edge sequence straight into CSR arrays."""
    edges = barabasi_albert_edges(nodes, attachment, random.Random(seed))
    return CSRGraph.from_edge_stream(nodes, edges)


def make_pool(nodes: int, pool_size: int, query_size: int, seed: int):
    """Distinct query sets over the stream-built host.

    BA growth attaches every node into one component, so uniform id
    samples are always solvable — no dict graph needed to check.
    """
    rng = random.Random(seed)
    pool, seen = [], set()
    while len(pool) < pool_size:
        query = tuple(rng.sample(range(nodes), query_size))
        key = frozenset(query)
        if key not in seen:
            seen.add(key)
            pool.append(query)
    return pool


async def drive_tower(service, trace, *, max_batch: int, max_wait_ms: float):
    """Serve the tower over TCP, replay the trace, return (report, stats)."""
    gateway = AsyncGateway(service, max_batch=max_batch, max_wait_ms=max_wait_ms)
    try:
        async with GatewayServer(gateway, port=0) as server:
            report = await replay_trace(
                trace, server.host, server.port, keep_results=True
            )
        stats = gateway.stats()
    finally:
        await gateway.aclose()
    return report, stats


def spot_check(csr, trace, report, checks: int) -> tuple[int, bool]:
    """Replayed answers vs cold one-shot solves on the same arrays.

    Picks the first occurrence of up to ``checks`` distinct queries; each
    reference solve runs on a *fresh* graph-less service, so nothing warm
    is shared with the tower that answered the replay.
    """
    picked: list[int] = []
    seen: set[frozenset] = set()
    for index, record in enumerate(trace.records):
        key = frozenset(record.query)
        if key not in seen:
            seen.add(key)
            picked.append(index)
        if len(picked) >= checks:
            break
    for index in picked:
        record = trace.records[index]
        payload = report.results[index]
        if payload is None:
            return len(picked), False
        reference = ConnectorService(None, csr=csr).solve(
            frozenset(record.query)
        )
        if payload["nodes"] != canonical_sort(reference.nodes):
            return len(picked), False
        if payload["wiener_index"] != reference.wiener_index:
            return len(picked), False
        metadata = payload["metadata"]
        for field in ("root", "lambda", "candidates"):
            if metadata.get(field) != reference.metadata.get(field):
                return len(picked), False
    return len(picked), True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1_000_000)
    parser.add_argument("--attachment", type=int, default=2,
                        help="BA edges per new node (default 2)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--requests", type=int, default=150)
    parser.add_argument("--pool-size", type=int, default=3,
                        help="distinct query sets, hottest first")
    parser.add_argument("--query-size", type=int, default=5)
    parser.add_argument("--mean-gap-ms", type=float, default=50.0)
    parser.add_argument("--zipf", type=float, default=1.1)
    parser.add_argument("--burst-amplitude", type=float, default=0.5)
    parser.add_argument("--burst-period-s", type=float, default=5.0)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--spot-checks", type=int, default=2,
                        help="distinct replayed queries re-solved cold and "
                             "compared bit for bit")
    parser.add_argument("--max-p99-s", type=float, default=1800.0,
                        help="SLO ceiling on client p99 latency (queueing "
                             "included; a 10^6-node sweep takes minutes)")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless the SLO envelope holds and "
             "replayed answers are bit-identical (CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "BENCH_scale.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Shrink to CI scale unless the caller pinned sizes explicitly.
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 4_000
        if args.requests == parser.get_default("requests"):
            args.requests = 40
        if args.pool_size == parser.get_default("pool_size"):
            args.pool_size = 4
        if args.mean_gap_ms == parser.get_default("mean_gap_ms"):
            args.mean_gap_ms = 5.0
        if args.burst_period_s == parser.get_default("burst_period_s"):
            args.burst_period_s = 1.0
        if args.max_p99_s == parser.get_default("max_p99_s"):
            args.max_p99_s = 120.0

    started = time.perf_counter()
    csr = build_csr(args.nodes, args.attachment, args.seed)
    build_seconds = time.perf_counter() - started
    print(
        f"instance: BA(n={args.nodes:,}, m={args.attachment}) streamed into "
        f"CSR ({csr.num_edges:,} edges) in {build_seconds:.1f}s — "
        "no dict graph materialized",
        flush=True,
    )

    pool = make_pool(args.nodes, args.pool_size, args.query_size, args.seed)
    trace = synthesize(
        pool,
        args.requests,
        mean_gap_ms=args.mean_gap_ms,
        zipf=args.zipf,
        burst_amplitude=args.burst_amplitude,
        burst_period_s=args.burst_period_s,
        seed=args.seed,
        meta={"instance": f"ba-{args.nodes}-{args.attachment}"},
    )
    print(
        f"trace: {len(trace)} requests over {trace.duration:.1f}s "
        f"({len(pool)} distinct queries of size {args.query_size}, "
        f"zipf={args.zipf}, burst ±{args.burst_amplitude:.0%})",
        flush=True,
    )

    slo = SLO(
        max_p99_ms=args.max_p99_s * 1000.0,
        max_shed_rate=0.05,
        max_error_rate=0.0,
    )

    tower_started = time.perf_counter()
    service = ShardedConnectorService(None, csr=csr, n_shards=args.shards)
    with service:
        spinup_seconds = time.perf_counter() - tower_started
        print(
            f"tower: {args.shards} shards over bare CSR arrays "
            f"(spin-up {spinup_seconds:.1f}s); replaying...",
            flush=True,
        )
        report, stats = asyncio.run(
            drive_tower(
                service, trace,
                max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
            )
        )
        summary = report.summary()
        print(
            f"replay: {summary['completed']}/{summary['requests']} answered "
            f"in {summary['duration_s']:.1f}s "
            f"({summary['throughput_rps']:.1f} req/s, "
            f"{summary['errors']} errors)",
            flush=True,
        )
        print(
            f"latency p50/p95/p99: {summary['p50_ms']:.0f}/"
            f"{summary['p95_ms']:.0f}/{summary['p99_ms']:.0f} ms; "
            f"shed {summary['shed']} ({report.shed_rate:.1%}), "
            f"coalesced {summary['coalesced']} ({report.coalesce_rate:.1%}), "
            f"{stats.windows_dispatched} windows "
            f"(mean size {stats.mean_window_size:.1f})",
            flush=True,
        )

        verdict = slo.evaluate(report)
        print(verdict.describe(), flush=True)

        checked, all_identical = spot_check(
            csr, trace, report, args.spot_checks
        )
        print(
            f"spot check: {checked} distinct replayed answers vs cold "
            f"one-shot solves — identical: {all_identical}",
            flush=True,
        )

    if not all_identical:
        print("FAIL: replayed connectors differ from one-shot solves",
              file=sys.stderr)
        return 1
    if not verdict.ok:
        for check in verdict.violations:
            print(f"FAIL: SLO {check.describe()}", file=sys.stderr)
        return 1
    if args.smoke:
        print("smoke OK")
        return 0

    record = {
        "benchmark": ("million-node scenario: stream-built BA host, sharded "
                      "tower, replayed trace, SLO gates"),
        "instance": {
            "model": "barabasi_albert (edge stream -> CSR, no dict graph)",
            "num_nodes": args.nodes,
            "num_edges": int(csr.num_edges),
            "attachment": args.attachment,
            "build_seconds": round(build_seconds, 2),
            "seed": args.seed,
        },
        "tower": {
            "shards": args.shards,
            "spinup_seconds": round(spinup_seconds, 2),
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "windows_dispatched": stats.windows_dispatched,
            "mean_window_size": round(stats.mean_window_size, 2),
        },
        "workload": {
            "requests": len(trace),
            "distinct_queries": len(pool),
            "query_size": args.query_size,
            "mean_gap_ms": args.mean_gap_ms,
            "zipf": args.zipf,
            "burst_amplitude": args.burst_amplitude,
            "burst_period_s": args.burst_period_s,
        },
        "replay": summary,
        "slo": {
            "envelope": {
                "max_p99_ms": slo.max_p99_ms,
                "max_shed_rate": slo.max_shed_rate,
                "max_error_rate": slo.max_error_rate,
            },
            **verdict.to_payload(),
        },
        "spot_check": {"checked": checked, "identical": all_identical},
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
