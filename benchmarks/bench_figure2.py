"""Benchmark: Figure 2 — the Steiner-vs-Wiener gadget and its scaling law."""

from bench_util import run_once
from repro.experiments import figure2


def test_figure2_gadget(benchmark):
    result = run_once(benchmark, figure2.run)
    assert (result.wiener_line, result.wiener_one_root,
            result.wiener_both_roots) == (165, 151, 142)
    benchmark.extra_info["table"] = figure2.render(result, [])


def test_figure2_scaling(benchmark):
    rows = run_once(benchmark, figure2.run_scaling, (10, 20, 40))
    gaps = [row.gap for row in rows]
    assert gaps == sorted(gaps)  # the Θ(h) gap grows with h
    assert gaps[-1] > 2 * gaps[0]
