"""Micro-benchmarks for the graph substrate the algorithm is built on.

These time the kernels that dominate ws-q's Õ(|Q||E|) runtime: BFS,
weighted Dijkstra, Mehlhorn's Steiner approximation, Wiener index
evaluation, and sampled betweenness.
"""

import random

import pytest

from repro.core.steiner import mehlhorn_steiner_tree
from repro.graphs.centrality import betweenness_centrality, pagerank
from repro.graphs.generators import barabasi_albert, connectify
from repro.graphs.graph import WeightedGraph
from repro.graphs.traversal import bfs_distances, dijkstra
from repro.graphs.wiener import wiener_index


@pytest.fixture(scope="module")
def pl_graph():
    rng = random.Random(1)
    return connectify(barabasi_albert(3000, 4, rng=rng), rng=rng)


@pytest.fixture(scope="module")
def weighted_graph(pl_graph):
    rng = random.Random(2)
    g = WeightedGraph()
    for u, v in pl_graph.edges():
        g.add_edge(u, v, rng.uniform(0.5, 4.5))
    return g


def test_bfs_single_source(benchmark, pl_graph):
    source = next(iter(pl_graph.nodes()))
    distances = benchmark(bfs_distances, pl_graph, source)
    assert len(distances) == pl_graph.num_nodes


def test_dijkstra_single_source(benchmark, weighted_graph):
    source = next(iter(weighted_graph.nodes()))
    distances, _ = benchmark(dijkstra, weighted_graph, source)
    assert len(distances) == weighted_graph.num_nodes


def test_mehlhorn_steiner(benchmark, weighted_graph):
    rng = random.Random(3)
    terminals = rng.sample(sorted(weighted_graph.nodes()), 10)
    tree = benchmark(mehlhorn_steiner_tree, weighted_graph, terminals)
    assert set(terminals) <= set(tree.nodes())


def test_wiener_index_medium(benchmark):
    rng = random.Random(4)
    g = connectify(barabasi_albert(400, 3, rng=rng), rng=rng)
    value = benchmark(wiener_index, g)
    assert value > 0


def test_sampled_betweenness(benchmark, pl_graph):
    scores = benchmark.pedantic(
        betweenness_centrality,
        args=(pl_graph,),
        kwargs={"sample_size": 50, "rng": random.Random(5)},
        rounds=1,
        iterations=1,
    )
    assert len(scores) == pl_graph.num_nodes


def test_pagerank(benchmark, pl_graph):
    scores = benchmark(pagerank, pl_graph, 0.85, None, 30)
    assert len(scores) == pl_graph.num_nodes
