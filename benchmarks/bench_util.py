"""Helpers shared by the benchmark files (kept out of conftest so the
module name never collides with tests/conftest.py when both trees are
collected in one pytest invocation)."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with one warm round (experiment-scale)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
