"""Benchmark: Figure 1 — karate-club connectors (exact + ws-q)."""

from bench_util import run_once
from repro.experiments import figure1


def test_figure1_karate(benchmark):
    panels = run_once(benchmark, figure1.run)
    dc, sc = panels
    assert dc.exact_wiener == 43
    assert sc.exact_wiener == 18
    assert sc.exact.added_nodes == frozenset([1, 6])
    benchmark.extra_info["table"] = figure1.render(panels)
