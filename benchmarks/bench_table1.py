"""Benchmark: regenerate Table 1 (dataset summaries).

Summarizes the small/medium stand-ins; the full table over all 13 datasets
is available via ``repro table1``.
"""

from bench_util import run_once
from repro.experiments import table1


def test_table1_summaries(benchmark):
    rows = run_once(
        benchmark, table1.run, ("football", "jazz", "celegans", "email")
    )
    assert len(rows) == 4
    for row in rows:
        assert row.summary.num_nodes > 0
        assert 0 < row.summary.density < 1
    benchmark.extra_info["table"] = table1.render(rows)
