"""Remote shard transport benchmark: socket shard hosts vs pipe shards.

The multi-host question is not "is sharding faster" (``bench_sharded.py``
pins that) but "what does moving the scatter/gather from pipes to
sockets *cost*" — the price of being able to put shard replicas on other
machines at all.  Same reference workload as the sharded benchmark: the
10k-node / 50k-edge graph under a 64-request Zipf-skewed stream over 16
distinct queries, arriving in fixed-size serving windows, with a pinned
per-process cache budget.  Two deployments:

* **pipe baseline** — ``ShardedConnectorService(n_shards=2)``, the PR-3
  shape: two local worker processes over duplex pipes;
* **remote** — two real ``shard-host`` daemon *processes* on localhost
  (spawned with the same graph seed and the same cache budget, digest
  handshake and all), fronted by
  ``ShardedConnectorService(shards=["127.0.0.1:p1", "127.0.0.1:p2"])``.

Ring placement depends only on the slot count, so both deployments serve
exactly the same keys on the same shard indices; the measured difference
is purely the transport — JSON-lines framing, pickled sweep payloads,
and TCP hops instead of pipe writes.

The gate checks two things end-to-end:

* the 64 connectors from the remote router are **bit-identical** (vertex
  sets and sweep traces) to the pipe-backed router's — which the sharded
  benchmark in turn pins to one-shot ``wiener_steiner``;
* the socket transport stays **within 1.5x** of pipe latency on the
  reference instance (recorded in ``BENCH_remote.json``) — the wire
  overhead must stay a toll, not a tax, or multi-host scale-out is
  fiction.  The reduced ``--smoke`` instance CI runs allows 2.0x:
  sweeps there are small enough that constant per-request wire costs
  weigh heavier, and CI timing noise rides on top.

Usage::

    python benchmarks/bench_remote.py            # reference instance, writes BENCH_remote.json
    python benchmarks/bench_remote.py --smoke    # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import re
import subprocess
import sys
import time

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from bench_backend import build_instance
from bench_serving import make_workload
from bench_sharded import cache_limits, identical, serve_windows

from repro.core.sharded import ShardedConnectorService
from repro.serving.remote import shutdown_shard_host

#: The daemon body: rebuild the deterministic instance, serve sweeps.
#: A real separate process — the honest price of the socket transport —
#: seeded exactly like the router (same build_instance arguments) so the
#: digest handshake passes.
_HOST_SCRIPT = """\
import json, sys
sys.path[:0] = {paths!r}
from bench_backend import build_instance
from repro.core.service import ConnectorService
from repro.serving.remote import ShardHostServer

spec = json.loads({spec!r})
graph, _ = build_instance(
    spec["nodes"], spec["edges"], spec["query_size"], spec["seed"]
)
service = ConnectorService(graph, **spec["limits"])
server = ShardHostServer(service, port=0).start()
print(f"listening on 127.0.0.1:{{server.port}}", flush=True)
server.wait_shutdown()
server.close()
"""


def spawn_shard_host(args, limits: dict) -> tuple[subprocess.Popen, int]:
    spec = json.dumps({
        "nodes": args.nodes, "edges": args.edges,
        "query_size": args.query_size, "seed": args.seed, "limits": limits,
    })
    here = pathlib.Path(__file__).resolve().parent
    paths = [str(here.parent / "src"), str(here)]
    process = subprocess.Popen(
        [sys.executable, "-c", _HOST_SCRIPT.format(paths=paths, spec=spec)],
        stdout=subprocess.PIPE,
        text=True,
    )
    for line in process.stdout:
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return process, int(match.group(1))
    raise RuntimeError("shard host never announced its port")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10_000)
    parser.add_argument("--edges", type=int, default=50_000)
    parser.add_argument("--query-size", type=int, default=10)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--unique", type=int, default=16,
                        help="distinct query sets in the request pool")
    parser.add_argument("--window", type=int, default=8,
                        help="requests per serving window (one solve_many each)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--cache-queries", type=int, default=4,
                        help="per-process cache budget, in resident query "
                             "working sets (same for both deployments)")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="fail above this remote/pipe latency ratio "
                             "(default: 1.5 reference, 2.0 smoke)")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless the socket transport matches "
        "the pipe transport bit-identically within the latency ratio "
        "(CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_remote.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Shrink to CI scale unless the caller pinned sizes explicitly —
        # the same instance the sharded smoke gate trusts.
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 2_500
        if args.edges == parser.get_default("edges"):
            args.edges = 10_000
        if args.query_size == parser.get_default("query_size"):
            args.query_size = 8
        if args.requests == parser.get_default("requests"):
            args.requests = 32
        if args.unique == parser.get_default("unique"):
            args.unique = 6
        if args.cache_queries == parser.get_default("cache_queries"):
            args.cache_queries = 2
    max_ratio = args.max_ratio if args.max_ratio is not None else (
        2.0 if args.smoke else 1.5
    )

    graph, _ = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    requests = make_workload(
        graph, args.requests, args.unique, args.query_size, args.seed
    )
    distinct = len({frozenset(q) for q in requests})
    limits = cache_limits(args.cache_queries, args.query_size, graph.num_nodes)
    print(
        f"instance: {graph}, {len(requests)} requests over {distinct} "
        f"distinct queries of size {args.query_size}, windows of "
        f"{args.window}, {args.shards} shards, "
        f"{args.cache_queries}-query budget/process, seed={args.seed}",
        flush=True,
    )

    with ShardedConnectorService(
        graph, n_shards=args.shards, **limits
    ) as pipe_router:
        baseline, pipe_seconds = serve_windows(pipe_router, requests, args.window)
    print(f"pipe shards x{args.shards}   : {pipe_seconds:8.3f}s "
          f"({pipe_seconds / len(requests) * 1e3:7.1f} ms/query)", flush=True)

    daemons = [spawn_shard_host(args, limits) for _ in range(args.shards)]
    addresses = [f"127.0.0.1:{port}" for _, port in daemons]
    try:
        with ShardedConnectorService(graph, shards=addresses) as remote_router:
            served, remote_seconds = serve_windows(
                remote_router, requests, args.window
            )
            stats = remote_router.stats()
    finally:
        for (process, port) in daemons:
            shutdown_shard_host("127.0.0.1", port)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
    print(f"socket shard hosts : {remote_seconds:8.3f}s "
          f"({remote_seconds / len(requests) * 1e3:7.1f} ms/query)", flush=True)

    all_identical = all(identical(a, b) for a, b in zip(baseline, served))
    ratio = remote_seconds / pipe_seconds if pipe_seconds > 0 else float("inf")
    print(f"identical connectors: {all_identical}")
    print(f"latency ratio (socket / pipe): {ratio:.2f}x (gate: {max_ratio}x)")
    print(f"router over sockets: routed={stats.requests_routed} "
          f"deduped={stats.inflight_deduped} "
          f"per-shard={[s.queries_served for s in stats.shards]}")

    if not all_identical:
        print(
            "FAIL: the socket transport returned different connectors",
            file=sys.stderr,
        )
        return 1
    if ratio > max_ratio:
        print(
            f"FAIL: socket transport is {ratio:.2f}x pipe latency, above "
            f"the {max_ratio}x bound",
            file=sys.stderr,
        )
        return 1
    if args.smoke:
        print("smoke OK")
        return 0

    record = {
        "benchmark": "remote shard hosts (sockets) vs pipe shards, windowed Zipf stream",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": args.query_size,
            "seed": args.seed,
        },
        "workload": {
            "requests": len(requests),
            "distinct_queries": distinct,
            "window": args.window,
            "distribution": "zipf(1.1) over the query pool, each distinct query at least once",
            "cache_budget_queries_per_process": args.cache_queries,
        },
        "shards": args.shards,
        "transports": {"baseline": "pipe", "measured": "socket"},
        "pipe_seconds": round(pipe_seconds, 4),
        "remote_seconds": round(remote_seconds, 4),
        "pipe_ms_per_query": round(pipe_seconds / len(requests) * 1e3, 2),
        "remote_ms_per_query": round(remote_seconds / len(requests) * 1e3, 2),
        "latency_ratio": round(ratio, 3),
        "max_ratio_gate": max_ratio,
        "identical_connectors": all_identical,
        "router_stats": {
            "requests_routed": stats.requests_routed,
            "inflight_deduped": stats.inflight_deduped,
            "per_shard_queries_served": [
                s.queries_served for s in stats.shards
            ],
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
