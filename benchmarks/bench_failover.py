"""Failover benchmark: availability and latency of the replicated ring.

Measures what PR 6's self-healing surface is *for*: a
:class:`~repro.core.sharded.ShardedConnectorService` with
``replication=2`` serving a windowed request stream while one of its
three replicas is killed mid-stream.  Three deployments over the same
instance and workload:

* **single service** — the ground truth: every connector the sharded
  deployments return must be bit-identical to it (which pins them, via
  ``bench_serving.py``'s gate, to one-shot ``wiener_steiner``);
* **steady state** — the replicated ring with nobody dying: the latency
  baseline the failover run is compared against;
* **failover** — the same ring, but one replica's process is killed
  while a window is in flight.  The stream must complete with **zero
  failed requests** (availability 1.0): the dead replica's in-flight
  sweeps re-dispatch to survivors, later windows serve degraded, and the
  ring heals (reconnect-with-backoff respawns the slot) before the gate
  checks the counters.

The record (``BENCH_failover.json``) keeps the honest numbers a
dashboard needs: per-window latency for steady vs failover runs, the
latency of the window the kill landed in, and the recovery counters
(``shards_failed`` / ``failovers`` / ``reconnects``) from
:meth:`~repro.core.sharded.ShardedConnectorService.stats`.

The gate (``--smoke`` in CI) checks behavior, not speed: all connectors
bit-identical, availability 1.0, exactly one shard failure recorded, and
the ring healed by the end.

Usage::

    python benchmarks/bench_failover.py           # reference instance, writes BENCH_failover.json
    python benchmarks/bench_failover.py --smoke   # small CI gate, no file written
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import threading
import time

if __package__ in (None, ""):
    _HERE = pathlib.Path(__file__).resolve().parent
    _SRC = _HERE.parent / "src"
    for path in (_SRC, _HERE):
        if path.is_dir() and str(path) not in sys.path:
            sys.path.insert(0, str(path))

from bench_backend import build_instance
from bench_serving import make_workload
from bench_sharded import cache_limits, identical

from repro.core.retry import BackoffPolicy
from repro.core.service import ConnectorService
from repro.core.sharded import ShardedConnectorService


def serve_windows_timed(service, requests, window: int):
    """Serve the stream window by window; returns (results, window_seconds)."""
    results = []
    latencies = []
    for begin in range(0, len(requests), window):
        started = time.perf_counter()
        results.extend(service.solve_many(requests[begin:begin + window]))
        latencies.append(time.perf_counter() - started)
    return results, latencies


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=5_000)
    parser.add_argument("--edges", type=int, default=20_000)
    parser.add_argument("--query-size", type=int, default=8)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--unique", type=int, default=12,
                        help="distinct query sets in the request pool")
    parser.add_argument("--window", type=int, default=8,
                        help="requests per serving window (one solve_many each)")
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--cache-queries", type=int, default=4,
                        help="per-process cache budget, in resident query "
                             "working sets")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced instance; exit 1 unless the failover run completes "
        "bit-identically with availability 1.0 and a healed ring "
        "(CI regression gate)",
    )
    parser.add_argument(
        "--output",
        default=str(pathlib.Path(__file__).resolve().parent.parent / "BENCH_failover.json"),
        help="where to write the JSON record (skipped in --smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        if args.nodes == parser.get_default("nodes"):
            args.nodes = 2_000
        if args.edges == parser.get_default("edges"):
            args.edges = 8_000
        if args.query_size == parser.get_default("query_size"):
            args.query_size = 6
        if args.requests == parser.get_default("requests"):
            args.requests = 24
        if args.unique == parser.get_default("unique"):
            args.unique = 8

    graph, _ = build_instance(args.nodes, args.edges, args.query_size, args.seed)
    requests = make_workload(
        graph, args.requests, args.unique, args.query_size, args.seed
    )
    limits = cache_limits(args.cache_queries, args.query_size, graph.num_nodes)
    # Revival pacing fit for a benchmark run; production keeps the default.
    backoff = BackoffPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
    ring = dict(
        n_shards=args.shards,
        replication=args.replication,
        backoff=backoff,
        heartbeat_interval=None,
        **limits,
    )
    print(
        f"instance: {graph}, {len(requests)} requests in windows of "
        f"{args.window}, {args.shards} shards x replication "
        f"{args.replication}, seed={args.seed}",
        flush=True,
    )

    with ConnectorService(graph, **limits) as single:
        baseline, _ = serve_windows_timed(single, requests, args.window)

    with ShardedConnectorService(graph, **ring) as steady_ring:
        steady_results, steady_windows = serve_windows_timed(
            steady_ring, requests, args.window
        )
    steady_seconds = sum(steady_windows)
    print(f"steady state   : {steady_seconds:8.3f}s "
          f"({steady_seconds / len(requests) * 1e3:7.1f} ms/query)",
          flush=True)

    # The chaos run: kill one replica while the second window is in flight.
    with ShardedConnectorService(graph, **ring) as chaos_ring:
        victim = chaos_ring._shards[0]
        first_window_done = threading.Event()

        def killer():
            first_window_done.wait(30.0)
            time.sleep(0.02)  # land inside the next window, not between
            victim.process.terminate()

        threading.Thread(target=killer, daemon=True).start()
        chaos_results = []
        chaos_windows = []
        for begin in range(0, len(requests), args.window):
            started = time.perf_counter()
            chaos_results.extend(
                chaos_ring.solve_many(requests[begin:begin + args.window])
            )
            chaos_windows.append(time.perf_counter() - started)
            first_window_done.set()
        # Let the backoff elapse and the slot respawn before reading the
        # recovery counters: "healed" is part of the contract under test.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            stats = chaos_ring.stats()
            if not stats.dead_shards:
                break
            time.sleep(0.05)
    chaos_seconds = sum(chaos_windows)
    print(f"with failover  : {chaos_seconds:8.3f}s "
          f"({chaos_seconds / len(requests) * 1e3:7.1f} ms/query)",
          flush=True)

    steady_identical = all(identical(a, b) for a, b in zip(baseline, steady_results))
    chaos_identical = all(identical(a, b) for a, b in zip(baseline, chaos_results))
    availability = len(chaos_results) / len(requests)
    healed = not stats.dead_shards and stats.reconnects >= 1
    slowest_chaos = max(chaos_windows)
    mean_steady = steady_seconds / len(steady_windows)
    print(f"identical connectors: steady={steady_identical} "
          f"failover={chaos_identical}")
    print(f"availability: {availability:.0%} "
          f"({len(chaos_results)}/{len(requests)} answered)")
    print(f"recovery: shards_failed={stats.shards_failed} "
          f"failovers={stats.failovers} reconnects={stats.reconnects} "
          f"dead={list(stats.dead_shards)}")
    print(f"window latency: steady mean {mean_steady * 1e3:.1f} ms, "
          f"failover worst {slowest_chaos * 1e3:.1f} ms")

    failures = []
    if not (steady_identical and chaos_identical):
        failures.append("connectors are not bit-identical to the single service")
    if availability < 1.0:
        failures.append(f"availability {availability:.0%} < 100%")
    if stats.shards_failed != 1:
        failures.append(f"expected exactly 1 shard failure, saw {stats.shards_failed}")
    if not healed:
        failures.append(
            f"ring did not heal (dead={list(stats.dead_shards)}, "
            f"reconnects={stats.reconnects})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.smoke:
        print("smoke OK")
        return 0

    record = {
        "benchmark": "replicated ring availability/latency: one replica killed mid-stream",
        "instance": {
            "model": "erdos_renyi + connectify",
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "query_size": args.query_size,
            "seed": args.seed,
        },
        "workload": {
            "requests": len(requests),
            "distinct_queries": len({frozenset(q) for q in requests}),
            "window": args.window,
            "distribution": "zipf(1.1) over the query pool, each distinct query at least once",
        },
        "ring": {
            "shards": args.shards,
            "replication": args.replication,
            "backoff": {"base_delay": backoff.base_delay, "max_delay": backoff.max_delay},
        },
        "availability": availability,
        "identical_connectors": chaos_identical,
        "steady_seconds": round(steady_seconds, 4),
        "failover_seconds": round(chaos_seconds, 4),
        "steady_ms_per_query": round(steady_seconds / len(requests) * 1e3, 2),
        "failover_ms_per_query": round(chaos_seconds / len(requests) * 1e3, 2),
        "steady_window_seconds": [round(w, 4) for w in steady_windows],
        "failover_window_seconds": [round(w, 4) for w in chaos_windows],
        "failover_worst_window_ms": round(slowest_chaos * 1e3, 2),
        "recovery": {
            "shards_failed": stats.shards_failed,
            "failovers": stats.failovers,
            "reconnects": stats.reconnects,
            "healed": healed,
        },
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
